package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// Experiment E6 — estimator accuracy ablation: how close the two signature
// similarity estimates (matched-positions vs the paper's set-overlap) come
// to the exact Jaccard similarity as the hash count grows. This validates
// Eq. 3 empirically and quantifies the bias of the set-overlap form used
// in Algorithm 1 line 9.
type EstimatorPoint struct {
	NumHashes int
	Estimator minhash.Estimator
	// MAE is the mean absolute error against exact Jaccard.
	MAE float64
	// Bias is the mean signed error.
	Bias float64
}

// EstimatorAblation samples random set pairs across the Jaccard range and
// measures estimator error per hash count.
func EstimatorAblation(pairs int, seed int64) ([]EstimatorPoint, error) {
	const k = 10
	rng := rand.New(rand.NewSource(seed))
	type pair struct {
		a, b  kmer.Set
		exact float64
	}
	ps := make([]pair, 0, pairs)
	for i := 0; i < pairs; i++ {
		shared := rng.Intn(400)
		only := 20 + rng.Intn(400)
		a, b := kmer.Set{}, kmer.Set{}
		for j := 0; j < shared; j++ {
			v := rng.Uint64() % kmer.FeatureSpace(k)
			a.Add(v)
			b.Add(v)
		}
		for j := 0; j < only; j++ {
			a.Add(rng.Uint64() % kmer.FeatureSpace(k))
			b.Add(rng.Uint64() % kmer.FeatureSpace(k))
		}
		ps = append(ps, pair{a: a, b: b, exact: kmer.Jaccard(a, b)})
	}
	var out []EstimatorPoint
	for _, n := range []int{25, 50, 100, 200} {
		sk, err := minhash.NewSketcher(n, k, seed+int64(n))
		if err != nil {
			return nil, err
		}
		for _, est := range []minhash.Estimator{minhash.MatchedPositions, minhash.SetOverlap} {
			var mae, bias float64
			for _, p := range ps {
				got := est.Similarity(sk.Sketch(p.a), sk.Sketch(p.b))
				mae += math.Abs(got - p.exact)
				bias += got - p.exact
			}
			out = append(out, EstimatorPoint{
				NumHashes: n,
				Estimator: est,
				MAE:       mae / float64(len(ps)),
				Bias:      bias / float64(len(ps)),
			})
		}
	}
	return out, nil
}

// FormatEstimator renders the estimator ablation.
func FormatEstimator(points []EstimatorPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: Jaccard estimator accuracy (E6)\n")
	fmt.Fprintf(&sb, "%7s %-18s %8s %8s\n", "hashes", "estimator", "MAE", "bias")
	for _, p := range points {
		fmt.Fprintf(&sb, "%7d %-18s %8.4f %+8.4f\n", p.NumHashes, p.Estimator, p.MAE, p.Bias)
	}
	return sb.String()
}
