package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/simulate"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// Figure 2 — runtime of the hierarchical algorithm versus number of
// computing nodes (2–12) and input size (1,000 to 10,000,000 reads from
// benchmark S1). Two data sources combine:
//
//   - executed points: for sizes below ExecuteLimit the pipeline really
//     runs on the engine and reports its virtual-clock makespan;
//   - modelled points: larger sizes use core.ModelRuntime, the same cost
//     model evaluated analytically (running 10M reads' all-pairs matrix
//     for real is infeasible on one machine — and, as EXPERIMENTS.md
//     discusses, on the paper's own cluster too).
type Figure2Point struct {
	Nodes    int
	Reads    int
	Runtime  time.Duration
	Executed bool // true when the pipeline actually ran
}

// Figure2Config sizes the sweep.
type Figure2Config struct {
	Nodes []int
	Reads []int
	// ExecuteLimit is the largest read count run for real.
	ExecuteLimit int
	Seed         int64
	// Trace collects spans from executed (non-modelled) points; nil
	// disables.
	Trace *trace.Recorder
}

// DefaultFigure2Config mirrors the paper's grid. ExecuteLimit is zero:
// every printed point comes from the same analytic cost model, keeping
// the series mutually comparable (the engine-executed path assumes exact
// all-pairs similarity, whose quadratic row cost diverges from the
// bounded-candidate model that makes the 10M-read points meaningful;
// executed points are cross-checked against the model in the tests
// instead).
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{
		Nodes: []int{2, 4, 6, 8, 10, 12},
		Reads: []int{1000, 10000, 100000, 1000000, 10000000},
		Seed:  1,
	}
}

// Figure2 produces the runtime grid.
func Figure2(cfg Figure2Config) ([]Figure2Point, error) {
	spec, err := simulate.TableIISpec("S1")
	if err != nil {
		return nil, err
	}
	var points []Figure2Point
	for _, reads := range cfg.Reads {
		for _, nodes := range cfg.Nodes {
			c := mapreduce.Cluster{Nodes: nodes, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel}
			if reads <= cfg.ExecuteLimit {
				scale := float64(reads) / float64(spec.Reads)
				if scale > 1 {
					scale = 1
				}
				rs, _, err := simulate.BuildWholeMetagenome(spec, scale, 0.005, cfg.Seed)
				if err != nil {
					return nil, err
				}
				res, err := core.Run(rs, core.Options{
					K: table3K, NumHashes: table3Hashes, Theta: table3Theta,
					Mode: core.HierarchicalMode, Canonical: true,
					Seed: cfg.Seed, Cluster: c, Trace: cfg.Trace,
				})
				if err != nil {
					return nil, err
				}
				points = append(points, Figure2Point{Nodes: nodes, Reads: reads, Runtime: res.Virtual, Executed: true})
			} else {
				rt := core.ModelRuntime(reads, c, core.HierarchicalMode, table3Hashes)
				points = append(points, Figure2Point{Nodes: nodes, Reads: reads, Runtime: rt})
			}
		}
	}
	return points, nil
}

// FormatFigure2 renders the grid as the paper's figure data: one series
// per input size, runtime in minutes per node count.
func FormatFigure2(points []Figure2Point) string {
	byReads := map[int][]Figure2Point{}
	var order []int
	for _, p := range points {
		if _, ok := byReads[p.Reads]; !ok {
			order = append(order, p.Reads)
		}
		byReads[p.Reads] = append(byReads[p.Reads], p)
	}
	var sb strings.Builder
	sb.WriteString("Figure 2: runtime (minutes) vs number of nodes\n")
	sb.WriteString(fmt.Sprintf("%-12s", "reads\\nodes"))
	if len(order) > 0 {
		for _, p := range byReads[order[0]] {
			sb.WriteString(fmt.Sprintf("%8d", p.Nodes))
		}
	}
	sb.WriteString("\n")
	for _, reads := range order {
		sb.WriteString(fmt.Sprintf("%-12d", reads))
		for _, p := range byReads[reads] {
			sb.WriteString(fmt.Sprintf("%8.1f", p.Runtime.Minutes()))
		}
		if len(byReads[reads]) > 0 && !byReads[reads][0].Executed {
			sb.WriteString("   (modelled)")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// AblationPoint is one (theta, hashes) quality sample for experiment E5.
type AblationPoint struct {
	Theta     float64
	NumHashes int
	Mode      core.Mode
	Clusters  int
	WAcc      float64
}

// AblationThetaHashes sweeps the two MrMC-MinH knobs over an S1-like
// sample, showing the θ/cluster-count trade-off the paper discusses in
// §III-B and the estimator-variance effect of the hash count.
func AblationThetaHashes(cfg Config) ([]AblationPoint, error) {
	spec, err := simulate.TableIISpec("S1")
	if err != nil {
		return nil, err
	}
	reads, truth, err := simulate.BuildWholeMetagenome(spec, cfg.Scale, 0.005, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, mode := range []core.Mode{core.GreedyMode, core.HierarchicalMode} {
		for _, theta := range []float64{0.2, 0.35, 0.5, 0.7, 0.9} {
			for _, hashes := range []int{25, 100} {
				res, err := core.Run(reads, core.Options{
					K: table3K, NumHashes: hashes, Theta: theta, Mode: mode,
					Canonical: true, Seed: cfg.Seed, Cluster: cfg.Cluster,
				})
				if err != nil {
					return nil, err
				}
				acc, err := metrics.WeightedAccuracy(res.Assignments, truth)
				if err != nil {
					return nil, err
				}
				out = append(out, AblationPoint{
					Theta: theta, NumHashes: hashes, Mode: mode,
					Clusters: res.NumClusters(), WAcc: acc,
				})
			}
		}
	}
	return out, nil
}

// FormatAblation renders ablation points as a table.
func FormatAblation(points []AblationPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: theta x hashes (E5)\n")
	fmt.Fprintf(&sb, "%-14s %6s %7s %9s %7s\n", "mode", "theta", "hashes", "#cluster", "W.Acc")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %6.2f %7d %9d %7.2f\n", p.Mode, p.Theta, p.NumHashes, p.Clusters, p.WAcc)
	}
	return sb.String()
}
