package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// Ablation E9 — b-bit minwise hashing: sketch storage versus estimator
// accuracy. The paper's terabyte-scale motivation (§II) is exactly what
// b-bit compression addresses: a 100-hash sketch shrinks from 800 bytes
// to 100 bits at b=1. This ablation quantifies the accuracy cost.
type BBitPoint struct {
	Bits       int // 0 = full 64-bit signature
	BytesPer   int // storage per 128-hash sketch
	MAE        float64
	Bias       float64
	Compressio float64 // compression ratio vs full signature
}

// AblationBBit measures estimator error per b over random set pairs.
func AblationBBit(pairs int, seed int64) ([]BBitPoint, error) {
	const (
		k = 10
		n = 128
	)
	rng := rand.New(rand.NewSource(seed))
	sk, err := minhash.NewSketcher(n, k, seed)
	if err != nil {
		return nil, err
	}
	type pair struct {
		a, b  minhash.Signature
		exact float64
	}
	ps := make([]pair, 0, pairs)
	for i := 0; i < pairs; i++ {
		shared := rng.Intn(400)
		only := 20 + rng.Intn(400)
		sa, sb := kmer.Set{}, kmer.Set{}
		for j := 0; j < shared; j++ {
			v := rng.Uint64() % kmer.FeatureSpace(k)
			sa.Add(v)
			sb.Add(v)
		}
		for j := 0; j < only; j++ {
			sa.Add(rng.Uint64() % kmer.FeatureSpace(k))
			sb.Add(rng.Uint64() % kmer.FeatureSpace(k))
		}
		ps = append(ps, pair{a: sk.Sketch(sa), b: sk.Sketch(sb), exact: kmer.Jaccard(sa, sb)})
	}
	fullBytes := 8 * n
	var out []BBitPoint
	// Full signature baseline.
	{
		var mae, bias float64
		for _, p := range ps {
			got := minhash.MatchedPositions.Similarity(p.a, p.b)
			mae += math.Abs(got - p.exact)
			bias += got - p.exact
		}
		out = append(out, BBitPoint{
			Bits: 0, BytesPer: fullBytes,
			MAE: mae / float64(len(ps)), Bias: bias / float64(len(ps)),
			Compressio: 1,
		})
	}
	for _, b := range []int{1, 2, 4, 8} {
		var mae, bias float64
		var bytesPer int
		for _, p := range ps {
			ca, err := minhash.Compact(p.a, b)
			if err != nil {
				return nil, err
			}
			cb, err := minhash.Compact(p.b, b)
			if err != nil {
				return nil, err
			}
			bytesPer = ca.Bytes()
			got, err := ca.Similarity(cb)
			if err != nil {
				return nil, err
			}
			mae += math.Abs(got - p.exact)
			bias += got - p.exact
		}
		out = append(out, BBitPoint{
			Bits: b, BytesPer: bytesPer,
			MAE: mae / float64(len(ps)), Bias: bias / float64(len(ps)),
			Compressio: float64(fullBytes) / float64(bytesPer),
		})
	}
	return out, nil
}

// FormatBBit renders the ablation.
func FormatBBit(points []BBitPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: b-bit minwise hashing (E9, 128 hashes)\n")
	fmt.Fprintf(&sb, "%6s %10s %12s %8s %8s\n", "bits", "bytes", "compression", "MAE", "bias")
	for _, p := range points {
		bits := "full"
		if p.Bits > 0 {
			bits = fmt.Sprint(p.Bits)
		}
		fmt.Fprintf(&sb, "%6s %10d %11.0fx %8.4f %+8.4f\n", bits, p.BytesPer, p.Compressio, p.MAE, p.Bias)
	}
	return sb.String()
}
