package bench

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/baselines"
	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/simulate"
)

// Tables IV and V — 16S benchmarks comparing all eight methods:
// MrMC-MinH^h, MrMC-MinH^g, MC-LSH, UCLUST, CD-HIT, ESPRIT, DOTUR, Mothur.
// Paper parameters: 15-mers, 50 hash functions, 95% similarity threshold.
const (
	sixteenSK      = 15
	sixteenSHashes = 50
	// identityTheta is the paper's 95% threshold in alignment-identity
	// space; sketch methods use the Jaccard-mapped equivalent, anchored a
	// point lower because minhash estimates of borderline pairs are noisy
	// (n=50 gives σ≈0.07) and the paper's own MrMC cluster counts sit
	// *below* the alignment tools', implying a slightly looser effective
	// cut.
	identityTheta       = 0.95
	sketchIdentityTheta = 0.94
)

// sixteenSMethods runs all eight methods over one 16S dataset.
func sixteenSMethods(reads []fasta.Record, truth []string, cfg Config) ([]Row, error) {
	jaccTheta := JaccardThresholdForIdentity(sketchIdentityTheta, sixteenSK)
	var rows []Row

	hierOpt := core.Options{
		K: sixteenSK, NumHashes: sixteenSHashes, Theta: jaccTheta,
		Mode: core.HierarchicalMode, Linkage: cluster.Average,
		Seed: cfg.Seed, Cluster: cfg.Cluster,
	}
	r, err := runMrMC("MrMC-MinH^h", reads, truth, hierOpt, cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)

	greedyOpt := hierOpt
	greedyOpt.Mode = core.GreedyMode
	r, err = runMrMC("MrMC-MinH^g", reads, truth, greedyOpt, cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)

	type baselineRun struct {
		m   baselines.Method
		opt baselines.Options
	}
	runs := []baselineRun{
		{baselines.MCLSH{}, baselines.Options{Threshold: jaccTheta, WordSize: sixteenSK, Seed: cfg.Seed}},
		{baselines.UClust{}, baselines.Options{Threshold: identityTheta, Seed: cfg.Seed}},
		{baselines.CDHit{}, baselines.Options{Threshold: identityTheta, Seed: cfg.Seed}},
		{baselines.Esprit{}, baselines.Options{Threshold: identityTheta, Seed: cfg.Seed}},
		{baselines.Dotur{}, baselines.Options{Threshold: identityTheta, Seed: cfg.Seed}},
		{baselines.Mothur{}, baselines.Options{Threshold: identityTheta, Seed: cfg.Seed}},
	}
	for _, br := range runs {
		r, err := runBaseline(br.m, reads, truth, br.opt, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Table4 runs the 16S simulated benchmark (Huse et al. derived) at 3% and
// 5% sequencing error, reporting #Cluster and W.Sim per method.
func Table4(cfg Config) ([]Row, error) {
	var rows []Row
	for _, errRate := range []float64{0.03, 0.05} {
		reads, truth, err := simulate.BuildHuse16S(errRate, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rs, err := sixteenSMethods(reads, truth, cfg)
		if err != nil {
			return nil, err
		}
		ds := fmt.Sprintf("err%.0f%%", errRate*100)
		for i := range rs {
			rs[i].Dataset = ds
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

// Table5Samples lists the environmental sample ids.
func Table5Samples() []string {
	out := []string{}
	for _, s := range simulate.TableI() {
		out = append(out, s.SID)
	}
	return out
}

// Table5 runs the eight-method comparison over the eight environmental
// seawater samples (Sogin et al. analogs), reporting #Cluster / W.Sim /
// Time. Samples may narrow the run (nil = all eight).
func Table5(cfg Config, samples []string) ([]Row, error) {
	if samples == nil {
		samples = Table5Samples()
	}
	var rows []Row
	for _, sid := range samples {
		sample, err := simulate.TableISample(sid)
		if err != nil {
			return nil, err
		}
		reads, truth, err := simulate.BuildEnvironmental(sample, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rs, err := sixteenSMethods(reads, truth, cfg)
		if err != nil {
			return nil, err
		}
		for i := range rs {
			rs[i].Dataset = sid
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}
