package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/metagenomics/mrmcminh/internal/baselines"
	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/simulate"
)

// Experiment E10 — measured runtime scaling: how the sketch-based greedy
// clusterer and the alignment-matrix DOTUR diverge as the sample grows.
// Table V's full-size samples gave the paper three to four orders of
// magnitude; this experiment shows the same divergence emerging from our
// implementations as N doubles.
type ScalingPoint struct {
	Reads  int
	Greedy time.Duration
	Dotur  time.Duration
	// Ratio is Dotur/Greedy.
	Ratio float64
}

// RuntimeScaling runs both methods over a growing environmental sample.
func RuntimeScaling(scales []float64, seed int64) ([]ScalingPoint, error) {
	sample, err := simulate.TableISample("53R")
	if err != nil {
		return nil, err
	}
	var out []ScalingPoint
	for _, scale := range scales {
		reads, _, err := simulate.BuildEnvironmental(sample, scale, seed)
		if err != nil {
			return nil, err
		}
		jaccTheta := JaccardThresholdForIdentity(sketchIdentityTheta, sixteenSK)

		start := time.Now()
		if _, err := core.Run(reads, core.Options{
			K: sixteenSK, NumHashes: sixteenSHashes, Theta: jaccTheta,
			Mode: core.GreedyMode, Seed: seed,
		}); err != nil {
			return nil, err
		}
		greedy := time.Since(start)

		start = time.Now()
		if _, err := (baselines.Dotur{}).Cluster(reads, baselines.Options{Threshold: identityTheta}); err != nil {
			return nil, err
		}
		dotur := time.Since(start)

		ratio := 0.0
		if greedy > 0 {
			ratio = float64(dotur) / float64(greedy)
		}
		out = append(out, ScalingPoint{Reads: len(reads), Greedy: greedy, Dotur: dotur, Ratio: ratio})
	}
	return out, nil
}

// FormatScaling renders the experiment.
func FormatScaling(points []ScalingPoint) string {
	var sb strings.Builder
	sb.WriteString("Measured runtime scaling: MrMC-MinH^g vs DOTUR (E10)\n")
	fmt.Fprintf(&sb, "%8s %12s %12s %8s\n", "reads", "greedy", "DOTUR", "ratio")
	for _, p := range points {
		fmt.Fprintf(&sb, "%8d %12v %12v %7.0fx\n",
			p.Reads, p.Greedy.Round(time.Millisecond), p.Dotur.Round(time.Millisecond), p.Ratio)
	}
	return sb.String()
}
