package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

// Ablation E7 — speculative execution: Hadoop's answer to straggling
// tasks. The paper's Figure 2 deployment inherits it silently; this
// ablation quantifies how much of the straggler tail the backup-task
// mechanism recovers in the runtime model, per node count.
type SpeculativePoint struct {
	Nodes int
	Reads int
	// Clean is the modelled runtime without stragglers.
	Clean time.Duration
	// Straggled is with stragglers, speculation off.
	Straggled time.Duration
	// Speculative is with stragglers, speculation on.
	Speculative time.Duration
}

// AblationSpeculative sweeps node counts at one large input size.
func AblationSpeculative(reads int, nodesList []int, numHashes int) []SpeculativePoint {
	var out []SpeculativePoint
	for _, nodes := range nodesList {
		clean := mapreduce.Cluster{Nodes: nodes, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel}
		slowCost := mapreduce.DefaultCostModel
		slowCost.StragglerFraction = 0.05
		slowCost.StragglerSlowdown = 5
		straggled := mapreduce.Cluster{Nodes: nodes, SlotsPerNode: 2, Cost: slowCost}
		speculative := straggled
		speculative.Speculative = true
		out = append(out, SpeculativePoint{
			Nodes:       nodes,
			Reads:       reads,
			Clean:       core.ModelRuntime(reads, clean, core.HierarchicalMode, numHashes),
			Straggled:   core.ModelRuntime(reads, straggled, core.HierarchicalMode, numHashes),
			Speculative: core.ModelRuntime(reads, speculative, core.HierarchicalMode, numHashes),
		})
	}
	return out
}

// FormatSpeculative renders the ablation.
func FormatSpeculative(points []SpeculativePoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: speculative execution under stragglers (E7)\n")
	fmt.Fprintf(&sb, "%6s %10s %10s %12s %12s %10s\n", "nodes", "reads", "clean", "straggled", "speculative", "recovered")
	for _, p := range points {
		rec := "-"
		if p.Straggled > p.Clean {
			frac := float64(p.Straggled-p.Speculative) / float64(p.Straggled-p.Clean)
			rec = fmt.Sprintf("%.0f%%", 100*frac)
		}
		fmt.Fprintf(&sb, "%6d %10d %10.1fm %11.1fm %11.1fm %10s\n",
			p.Nodes, p.Reads, p.Clean.Minutes(), p.Straggled.Minutes(), p.Speculative.Minutes(), rec)
	}
	return sb.String()
}
