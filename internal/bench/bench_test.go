package bench

import (
	"strings"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.004
	cfg.SimOptions.MaxPairsPerCluster = 20
	return cfg
}

func TestJaccardThresholdForIdentity(t *testing.T) {
	// Identity 1 -> Jaccard 1.
	if got := JaccardThresholdForIdentity(1, 15); got != 1 {
		t.Fatalf("J(1) = %v", got)
	}
	// Monotone in identity.
	prev := -1.0
	for _, id := range []float64{0.8, 0.9, 0.95, 0.99} {
		j := JaccardThresholdForIdentity(id, 15)
		if j <= prev {
			t.Fatalf("not monotone at %v", id)
		}
		prev = j
	}
	// Known value: 0.95^15 / (2 - 0.95^15) ≈ 0.30.
	j := JaccardThresholdForIdentity(0.95, 15)
	if j < 0.28 || j > 0.33 {
		t.Fatalf("J(0.95, 15) = %v", j)
	}
	// Larger k -> stricter mapping.
	if JaccardThresholdForIdentity(0.95, 20) >= j {
		t.Fatal("larger k should reduce the Jaccard threshold")
	}
}

func TestTable3ShapeOnS9(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end table run")
	}
	cfg := tinyConfig()
	// The greedy-faster-than-hierarchical model shape needs enough reads
	// that the O(N²) similarity phase outweighs fixed job overheads —
	// exactly as on real Hadoop, where tiny jobs are startup-dominated.
	cfg.Scale = 0.012
	rows, err := Table3(cfg, []string{"S9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byMethod := map[string]Row{}
	for _, r := range rows {
		if r.Dataset != "S9" {
			t.Fatalf("dataset %q", r.Dataset)
		}
		byMethod[r.Method] = r
	}
	h, g, m := byMethod["MrMC-MinH^h"], byMethod["MrMC-MinH^g"], byMethod["MetaCluster"]
	// Paper shape: hierarchical W.Acc >= greedy >= MetaCluster (within a
	// couple points), and the MrMC modes report a model time.
	if !h.Summary.HasAcc || !g.Summary.HasAcc {
		t.Fatal("accuracy missing")
	}
	if h.Summary.WAcc < g.Summary.WAcc-2 {
		t.Errorf("hierarchical W.Acc %.1f below greedy %.1f", h.Summary.WAcc, g.Summary.WAcc)
	}
	if h.Summary.WAcc < m.Summary.WAcc-2 {
		t.Errorf("hierarchical W.Acc %.1f below MetaCluster %.1f", h.Summary.WAcc, m.Summary.WAcc)
	}
	if h.Model <= 0 || g.Model <= 0 {
		t.Error("MrMC rows missing model time")
	}
	if m.Model != 0 {
		t.Error("baseline row has model time")
	}
	if g.Model >= h.Model {
		t.Errorf("greedy model time %v not below hierarchical %v", g.Model, h.Model)
	}
	// Table III reports ground truth for simulated samples.
	if h.Summary.NumClusters < 1 {
		t.Error("no clusters survived trimming")
	}
}

func TestTable3R1HasNoAccuracy(t *testing.T) {
	rows, err := Table3(tinyConfig(), []string{"R1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Summary.HasAcc {
			t.Errorf("%s reports accuracy for R1 (no ground truth)", r.Method)
		}
	}
}

func TestTable3UnknownSample(t *testing.T) {
	if _, err := Table3(tinyConfig(), []string{"S99"}); err == nil {
		t.Fatal("unknown sample accepted")
	}
}

func TestTable4AllMethodsBothErrorRates(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end table run")
	}
	cfg := tinyConfig()
	cfg.Scale = 0.0006 // ~200 reads
	rows, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("got %d rows, want 16 (8 methods x 2 error rates)", len(rows))
	}
	datasets := map[string]int{}
	for _, r := range rows {
		datasets[r.Dataset]++
		if r.Summary.HasSim && (r.Summary.WSim < 80 || r.Summary.WSim > 100) {
			t.Errorf("%s/%s W.Sim %.1f implausible", r.Dataset, r.Method, r.Summary.WSim)
		}
	}
	if datasets["err3%"] != 8 || datasets["err5%"] != 8 {
		t.Fatalf("datasets %v", datasets)
	}
}

func TestTable5OneSampleShape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.015
	rows, err := Table5(cfg, []string{"55R"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	var hier, dotur Row
	for _, r := range rows {
		switch r.Method {
		case "MrMC-MinH^h":
			hier = r
		case "DOTUR":
			dotur = r
		}
	}
	// Paper's Table V claims: MrMC-MinH^h produces similar W.Sim with
	// fewer clusters than DOTUR, and runs orders of magnitude faster than
	// the alignment-matrix methods.
	if hier.Summary.NumClusters > dotur.Summary.NumClusters {
		t.Errorf("MrMC-h clusters %d above DOTUR %d", hier.Summary.NumClusters, dotur.Summary.NumClusters)
	}
	if hier.Summary.HasSim && dotur.Summary.HasSim {
		if diff := dotur.Summary.WSim - hier.Summary.WSim; diff > 6 {
			t.Errorf("W.Sim gap %.1f too large", diff)
		}
	}
	if hier.Summary.Elapsed > dotur.Summary.Elapsed {
		t.Errorf("MrMC-h measured %v slower than DOTUR %v", hier.Summary.Elapsed, dotur.Summary.Elapsed)
	}
}

func TestTableRendering(t *testing.T) {
	rows := []Row{
		{Dataset: "S1", Method: "A", Summary: summaryWith("A", 5), Model: time.Minute},
		{Dataset: "S1", Method: "B", Summary: summaryWith("B", 7)},
		{Dataset: "S2", Method: "A", Summary: summaryWith("A", 2)},
	}
	out := Table("Title", rows)
	for _, frag := range []string{"Title", "S1", "S2", "T.model", "1m 00s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table output missing %q:\n%s", frag, out)
		}
	}
	// Second S1 row should not repeat the SID.
	if strings.Count(out, "S1") != 1 {
		t.Errorf("SID repeated:\n%s", out)
	}
}

func summaryWith(name string, clusters int) metrics.Summary {
	return metrics.Summary{Name: name, NumClusters: clusters, Elapsed: time.Second}
}

func TestFigure2GridAndShape(t *testing.T) {
	cfg := Figure2Config{
		Nodes:        []int{2, 8},
		Reads:        []int{200, 1000000},
		ExecuteLimit: 300,
		Seed:         1,
	}
	points, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	byKey := map[[2]int]Figure2Point{}
	for _, p := range points {
		byKey[[2]int{p.Reads, p.Nodes}] = p
	}
	small2, small8 := byKey[[2]int{200, 2}], byKey[[2]int{200, 8}]
	big2, big8 := byKey[[2]int{1000000, 2}], byKey[[2]int{1000000, 8}]
	if !small2.Executed || big2.Executed {
		t.Fatalf("execute/model split wrong: %+v %+v", small2, big2)
	}
	if big8.Runtime >= big2.Runtime {
		t.Errorf("1M reads: 8 nodes %v not faster than 2 nodes %v", big8.Runtime, big2.Runtime)
	}
	ratio := float64(small2.Runtime) / float64(small8.Runtime)
	if ratio > 1.6 {
		t.Errorf("200 reads should be overhead-flat: 2n=%v 8n=%v", small2.Runtime, small8.Runtime)
	}
	out := FormatFigure2(points)
	for _, frag := range []string{"Figure 2", "1000000", "(modelled)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("figure output missing %q:\n%s", frag, out)
		}
	}
}

func TestAblationThetaHashes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow parameter sweep")
	}
	cfg := tinyConfig()
	cfg.Scale = 0.002
	points, err := AblationThetaHashes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 20 {
		t.Fatalf("got %d points, want 20", len(points))
	}
	// Within one mode and hash count, cluster count grows with theta.
	prev := -1
	for _, p := range points {
		if p.Mode.String() == "MrMC-MinH^g" && p.NumHashes == 100 {
			if prev >= 0 && p.Clusters < prev {
				t.Errorf("greedy clusters not monotone in theta: %d after %d", p.Clusters, prev)
			}
			prev = p.Clusters
		}
	}
	if !strings.Contains(FormatAblation(points), "theta") {
		t.Error("ablation formatting broken")
	}
}

func TestEstimatorAblation(t *testing.T) {
	points, err := EstimatorAblation(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("got %d points, want 8", len(points))
	}
	// Matched-positions error shrinks as hashes grow.
	var m25, m200 float64
	for _, p := range points {
		if p.Estimator == minhash.MatchedPositions {
			switch p.NumHashes {
			case 25:
				m25 = p.MAE
			case 200:
				m200 = p.MAE
			}
		}
	}
	if m200 >= m25 {
		t.Errorf("matched-positions MAE not shrinking: n=25 %.4f vs n=200 %.4f", m25, m200)
	}
	// The set-overlap estimator carries a visible bias; matched-positions
	// is near-unbiased at high hash counts.
	for _, p := range points {
		if p.Estimator == minhash.MatchedPositions && p.NumHashes == 200 {
			if p.Bias > 0.05 || p.Bias < -0.05 {
				t.Errorf("matched-positions bias %.4f at n=200", p.Bias)
			}
		}
	}
	if !strings.Contains(FormatEstimator(points), "estimator") {
		t.Error("estimator formatting broken")
	}
}

func TestAblationSpeculative(t *testing.T) {
	points := AblationSpeculative(1000000, []int{2, 8}, 100)
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Straggled <= p.Clean {
			t.Errorf("nodes=%d: stragglers did not slow the model", p.Nodes)
		}
		if p.Speculative >= p.Straggled {
			t.Errorf("nodes=%d: speculation did not help", p.Nodes)
		}
		if p.Speculative < p.Clean {
			t.Errorf("nodes=%d: speculation beat the clean run", p.Nodes)
		}
	}
	if !strings.Contains(FormatSpeculative(points), "recovered") {
		t.Error("speculative formatting broken")
	}
}

func TestAblationErrorModel(t *testing.T) {
	points, err := AblationErrorModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Clusters < p.Taxa {
			t.Errorf("%s: %d clusters below %d taxa", p.Channel, p.Clusters, p.Taxa)
		}
		if p.WAccPct < 95 {
			t.Errorf("%s: accuracy %.1f", p.Channel, p.WAccPct)
		}
	}
	if !strings.Contains(FormatErrorModel(points), "inflation") {
		t.Error("error-model formatting broken")
	}
}

func TestAblationBBit(t *testing.T) {
	points, err := AblationBBit(80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points", len(points))
	}
	full := points[0]
	if full.Bits != 0 || full.Compressio != 1 {
		t.Fatalf("baseline %+v", full)
	}
	// Error decreases as bits grow; b=8 should be near the full signature.
	for i := 2; i < len(points); i++ {
		if points[i].MAE > points[i-1].MAE+0.01 {
			t.Errorf("MAE not improving with bits: %+v then %+v", points[i-1], points[i])
		}
	}
	if points[len(points)-1].MAE > full.MAE+0.01 {
		t.Errorf("b=8 MAE %v far above full %v", points[len(points)-1].MAE, full.MAE)
	}
	// Compression ratios: b=1 is 64x smaller than 64-bit slots.
	if points[1].Compressio != 64 {
		t.Errorf("b=1 compression %v", points[1].Compressio)
	}
	if !strings.Contains(FormatBBit(points), "compression") {
		t.Error("formatting broken")
	}
}

func TestFigure2SVG(t *testing.T) {
	cfg := Figure2Config{Nodes: []int{2, 8}, Reads: []int{1000, 100000}, Seed: 1}
	points, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svg := Figure2SVG(points)
	for _, frag := range []string{"<svg", "</svg>", "1k reads", "100k reads", "<path", "nodes"} {
		if !strings.Contains(svg, frag) {
			t.Errorf("svg missing %q", frag)
		}
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("svg contains invalid coordinates")
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int]string{1000: "1k", 10000000: "10M", 1500: "1500", 250000: "250k"}
	for n, want := range cases {
		if got := humanCount(n); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFormatCSV(t *testing.T) {
	rows := []Row{
		{Dataset: "S1", Method: "A", Summary: summaryWith("A", 5), Model: time.Minute},
		{Dataset: "S1", Method: "B", Summary: summaryWith("B", 7)},
	}
	csv := FormatCSV(rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "dataset,method") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "60.0") {
		t.Fatalf("model seconds missing: %q", lines[1])
	}
}

func TestRuntimeScaling(t *testing.T) {
	points, err := RuntimeScaling([]float64{0.005, 0.02}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	if points[1].Reads <= points[0].Reads {
		t.Fatal("reads not growing")
	}
	// DOTUR's quadratic cost must outpace the sketch clusterer as N grows.
	if points[1].Ratio <= points[0].Ratio*0.8 {
		t.Fatalf("divergence not visible: ratios %.1f then %.1f", points[0].Ratio, points[1].Ratio)
	}
	if !strings.Contains(FormatScaling(points), "DOTUR") {
		t.Error("formatting broken")
	}
}
