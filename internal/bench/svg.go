package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SVG rendering for Figure 2 — a log-log line chart of runtime versus
// node count, one series per input size, written with nothing but the
// standard library so the repository can emit the actual figure artifact.

// svgGeom fixes the canvas layout.
const (
	svgW, svgH             = 640, 420
	svgMarginL, svgMarginR = 70, 150
	svgMarginT, svgMarginB = 40, 50
)

// Figure2SVG renders the runtime grid as an SVG line chart.
func Figure2SVG(points []Figure2Point) string {
	byReads := map[int][]Figure2Point{}
	var sizes []int
	for _, p := range points {
		if _, ok := byReads[p.Reads]; !ok {
			sizes = append(sizes, p.Reads)
		}
		byReads[p.Reads] = append(byReads[p.Reads], p)
	}
	sort.Ints(sizes)

	// Axis ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		x := float64(p.Nodes)
		y := p.Runtime.Minutes()
		if y <= 0 {
			y = 0.1
		}
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	if minY == maxY {
		maxY = minY * 10
	}
	plotW := float64(svgW - svgMarginL - svgMarginR)
	plotH := float64(svgH - svgMarginT - svgMarginB)
	xOf := func(nodes int) float64 {
		return float64(svgMarginL) + plotW*(float64(nodes)-minX)/(maxX-minX)
	}
	yOf := func(minutes float64) float64 {
		if minutes <= 0 {
			minutes = 0.1
		}
		ly := math.Log10(minutes)
		lo, hi := math.Log10(minY), math.Log10(maxY)
		return float64(svgMarginT) + plotH*(1-(ly-lo)/(hi-lo))
	}

	colors := []string{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b"}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, svgW, svgH)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%d" y="20" font-size="14" font-weight="bold">Runtime vs nodes (MrMC-MinH hierarchical, modelled)</text>`, svgMarginL)

	// Y grid: decades.
	for d := math.Ceil(math.Log10(minY)); d <= math.Floor(math.Log10(maxY)); d++ {
		v := math.Pow(10, d)
		y := yOf(v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`, svgMarginL, y, svgW-svgMarginR, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end" dy="4">%g min</text>`, svgMarginL-6, y, v)
	}
	// X ticks: node counts of the first series.
	if len(sizes) > 0 {
		for _, p := range byReads[sizes[0]] {
			x := xOf(p.Nodes)
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`, x, svgMarginT, x, svgH-svgMarginB)
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%d</text>`, x, svgH-svgMarginB+18, p.Nodes)
		}
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">nodes</text>`, svgMarginL+int(plotW/2), svgH-8)

	// Series.
	for si, reads := range sizes {
		pts := byReads[reads]
		sort.Slice(pts, func(a, b int) bool { return pts[a].Nodes < pts[b].Nodes })
		color := colors[si%len(colors)]
		var path strings.Builder
		for i, p := range pts {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f,%.1f ", cmd, xOf(p.Nodes), yOf(p.Runtime.Minutes()))
		}
		fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`, strings.TrimSpace(path.String()), color)
		for _, p := range pts {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, xOf(p.Nodes), yOf(p.Runtime.Minutes()), color)
		}
		// Legend.
		ly := svgMarginT + 16*si
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`, svgW-svgMarginR+10, ly, svgW-svgMarginR+30, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" dy="4">%s reads</text>`, svgW-svgMarginR+36, ly, humanCount(reads))
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

// humanCount renders 1000 as 1k, 10000000 as 10M.
func humanCount(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dk", n/1000)
	default:
		return fmt.Sprint(n)
	}
}

// FormatCSV renders any table rows as comma-separated values for external
// plotting.
func FormatCSV(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("dataset,method,clusters,wacc,wsim,seconds,model_seconds\n")
	for _, r := range rows {
		wacc, wsim := "", ""
		if r.Summary.HasAcc {
			wacc = fmt.Sprintf("%.2f", r.Summary.WAcc)
		}
		if r.Summary.HasSim {
			wsim = fmt.Sprintf("%.2f", r.Summary.WSim)
		}
		model := ""
		if r.Model > 0 {
			model = fmt.Sprintf("%.1f", r.Model.Seconds())
		}
		fmt.Fprintf(&sb, "%s,%s,%d,%s,%s,%.2f,%s\n",
			r.Dataset, r.Method, r.Summary.NumClusters, wacc, wsim, r.Summary.Elapsed.Seconds(), model)
	}
	return sb.String()
}
