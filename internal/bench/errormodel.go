package bench

import (
	"fmt"
	"strings"

	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/simulate"
)

// Ablation E8 — sequencing error channel: the paper's 16S benchmarks come
// from 454 pyrosequencers whose signature error is homopolymer indels,
// not substitutions. This ablation clusters the same community through
// both channels and reports the OTU inflation each causes relative to the
// true taxon count — the effect Huse et al. (the paper's accuracy
// reference) documented.
type ErrorModelPoint struct {
	Channel  string
	Taxa     int
	Reads    int
	Clusters int
	WAccPct  float64
}

// AblationErrorModel builds matched samples under the substitution and
// 454 channels and clusters both hierarchically.
func AblationErrorModel(cfg Config) ([]ErrorModelPoint, error) {
	const (
		taxa    = 20
		perTax  = 20
		readLen = 80
	)
	opt := core.Options{
		K: sixteenSK, NumHashes: sixteenSHashes,
		Theta: JaccardThresholdForIdentity(sketchIdentityTheta, sixteenSK),
		Mode:  core.HierarchicalMode, Seed: cfg.Seed, Cluster: cfg.Cluster,
	}
	var out []ErrorModelPoint

	// Substitution channel (uniform per-read rate up to 3%).
	subReads, subTruth, err := simulate.Amplicons(simulate.AmpliconOptions{
		Taxa: taxa, ReadsPerTaxon: perTax, ReadLength: readLen,
		ErrorRate: 0.03, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	p, err := clusterAndScore("substitution", subReads, subTruth, opt, taxa)
	if err != nil {
		return nil, err
	}
	out = append(out, p)

	// 454 channel (homopolymer indels dominate).
	recs454, err := simulate.Amplicons454(simulate.AmpliconOptions{
		Taxa: taxa, ReadsPerTaxon: perTax, ReadLength: readLen, Seed: cfg.Seed,
	}, simulate.DefaultError454)
	if err != nil {
		return nil, err
	}
	reads454 := make([]fasta.Record, len(recs454))
	truth454 := make([]string, len(recs454))
	for i, r := range recs454 {
		reads454[i] = fasta.Record{ID: r.ID, Seq: r.Read}
		truth454[i] = fmt.Sprintf("taxon%02d", r.Taxon)
	}
	p, err = clusterAndScore("454-homopolymer", reads454, truth454, opt, taxa)
	if err != nil {
		return nil, err
	}
	out = append(out, p)
	return out, nil
}

// clusterAndScore runs one channel's sample.
func clusterAndScore(channel string, reads []fasta.Record, truth []string, opt core.Options, taxa int) (ErrorModelPoint, error) {
	res, err := core.Run(reads, opt)
	if err != nil {
		return ErrorModelPoint{}, err
	}
	acc := 0.0
	if truth != nil {
		acc, err = metrics.WeightedAccuracy(res.Assignments, truth)
		if err != nil {
			return ErrorModelPoint{}, err
		}
	}
	return ErrorModelPoint{
		Channel:  channel,
		Taxa:     taxa,
		Reads:    len(reads),
		Clusters: res.NumClusters(),
		WAccPct:  acc,
	}, nil
}

// FormatErrorModel renders the ablation.
func FormatErrorModel(points []ErrorModelPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: sequencing error channel (E8)\n")
	fmt.Fprintf(&sb, "%-18s %6s %6s %9s %8s %10s\n", "channel", "taxa", "reads", "#cluster", "W.Acc", "inflation")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-18s %6d %6d %9d %8.2f %9.1fx\n",
			p.Channel, p.Taxa, p.Reads, p.Clusters, p.WAccPct, float64(p.Clusters)/float64(p.Taxa))
	}
	return sb.String()
}
