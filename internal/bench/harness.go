// Package bench regenerates the paper's evaluation: Table III (whole
// metagenome, MrMC-MinH vs MetaCluster), Table IV (16S simulated, eight
// methods), Table V (16S environmental, eight methods), Figure 2 (runtime
// vs nodes and input size) and two ablations (threshold/hash-count sweep
// and Jaccard-estimator comparison).
//
// Every experiment accepts a scale factor: the paper's read counts are
// multiplied down so a laptop run finishes in seconds; `cmd/experiments
// -scale` raises it toward paper sizes. Quality *shapes* (who wins, by
// what rough factor) are preserved across scales; EXPERIMENTS.md records
// paper-vs-measured values.
package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/metagenomics/mrmcminh/internal/baselines"
	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies the paper's dataset sizes (0 < Scale <= 1).
	Scale float64
	// Seed drives all dataset generation and hashing.
	Seed int64
	// Cluster is the simulated deployment for MrMC-MinH runs.
	Cluster mapreduce.Cluster
	// SimOptions controls the W.Sim evaluation cost.
	SimOptions metrics.SimilarityOptions
	// TrimCounts reports cluster counts only for clusters above the
	// evaluation size floor. The paper trims Table III ("clustering
	// results are trimmed after applying threshold on number of
	// clusters") but reports raw counts — dust included — in Tables IV
	// and V.
	TrimCounts bool
	// Trace, when non-nil, collects job/task spans from every MrMC-MinH
	// run in the experiment (baseline methods are not traced).
	Trace *trace.Recorder
	// Faults, when non-nil, injects the plan's failures into every
	// MrMC-MinH run (baseline methods do not use the simulated cluster).
	// Results are unchanged; the modelled time includes the recovery.
	Faults *faults.Injector
	// ShuffleBufferBytes caps the map-side sort buffer of every MrMC-MinH
	// run's jobs (see mapreduce.Job.ShuffleBufferBytes); 0 keeps the
	// in-memory shuffle. Results are unchanged either way.
	ShuffleBufferBytes int
	// Candidate selects the candidate-pair generator for every MrMC-MinH
	// run: the exact all-pairs path (default) or the sub-quadratic
	// LSH+connected-components path (see core.CandidateLSH).
	Candidate core.CandidateGen
	// StoreBits selects the signature backing of every MrMC-MinH run
	// (see core.Options.StoreBits): 0 store-backed full width (default,
	// bit-identical), -1 legacy slices, 1..16 b-bit packed.
	StoreBits int
	// CheckpointStore, when non-nil, journals every MrMC-MinH run's
	// stages under a per-run content-addressed directory (run name plus
	// input hash), so an interrupted experiment sweep can resume.
	CheckpointStore checkpoint.Store
	// Resume consults those journals: runs whose journal has entries skip
	// their validated stages; runs with no journal yet execute fresh (the
	// sweep-level analogue of --resume, without the single-run CLI's
	// missing-manifest error).
	Resume bool
}

// DefaultConfig is a laptop-friendly configuration.
func DefaultConfig() Config {
	sim := metrics.DefaultSimilarityOptions
	sim.MinClusterSize = 5 // scaled-down clusters are small
	sim.MaxPairsPerCluster = 60
	return Config{
		Scale:      0.01,
		Seed:       1,
		Cluster:    mapreduce.DefaultCluster,
		SimOptions: sim,
	}
}

// JaccardThresholdForIdentity maps an alignment-identity threshold t (the
// paper's "95% similarity") onto the equivalent k-mer Jaccard threshold:
// a pair at identity t keeps a ~t^k fraction of its k-mers intact, giving
// Jaccard ≈ t^k / (2 - t^k). Sketch-based methods cluster in Jaccard
// space, alignment-based methods in identity space; this mapping keeps the
// two families cutting at the same biological level.
func JaccardThresholdForIdentity(t float64, k int) float64 {
	f := math.Pow(t, float64(k))
	return f / (2 - f)
}

// Row is one method's result on one dataset. Time semantics: Summary's
// Elapsed is the locally measured wall time for every method (so runtime
// comparisons across methods are apples-to-apples); Model, set only for
// the MrMC-MinH modes, is the simulated-cluster virtual time (the paper's
// reported "Time" on Amazon EMR).
type Row struct {
	Dataset string
	Method  string
	Summary metrics.Summary
	Model   time.Duration
}

// Table renders rows grouped by dataset in the paper's column layout,
// with cluster counts trimmed to clusters above the evaluation size floor
// (the paper trims small clusters before reporting counts).
func Table(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-8s %s %12s\n", "SID", metrics.HeaderRow(), "T.model")
	last := ""
	for _, r := range rows {
		sid := r.Dataset
		if sid == last {
			sid = ""
		} else if last != "" {
			sb.WriteString("\n")
		}
		model := "-"
		if r.Model > 0 {
			model = metrics.FormatDuration(r.Model)
		}
		fmt.Fprintf(&sb, "%-8s %s %12s\n", sid, r.Summary.Row(), model)
		last = r.Dataset
	}
	return sb.String()
}

// runMrMC executes an MrMC-MinH mode and evaluates it.
func runMrMC(name string, reads []fasta.Record, truth []string, opt core.Options, cfg Config) (Row, error) {
	opt.Trace = cfg.Trace
	opt.Faults = cfg.Faults
	opt.ShuffleBufferBytes = cfg.ShuffleBufferBytes
	opt.Candidate = cfg.Candidate
	opt.StoreBits = cfg.StoreBits
	if cfg.CheckpointStore != nil {
		dir := "/" + slug(name) + "-" + core.HashReads(reads)[:12]
		journal, err := checkpoint.Open(cfg.CheckpointStore, dir)
		if err != nil {
			return Row{}, fmt.Errorf("bench: %s: %w", name, err)
		}
		opt.Checkpoint = journal
		if cfg.Resume && !journal.Empty() {
			opt.Resume = core.ResumeOn
		}
	}
	res, err := core.Run(reads, opt)
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s: %w", name, err)
	}
	seqs := seqsOf(reads)
	sum, err := metrics.Evaluate(name, res.Assignments, truth, seqs, cfg.SimOptions, res.Real)
	if err != nil {
		return Row{}, err
	}
	if cfg.TrimCounts {
		sum.NumClusters = res.Assignments.NumClustersAtLeast(cfg.SimOptions.MinClusterSize + 1)
	}
	return Row{Method: name, Summary: sum, Model: res.Virtual}, nil
}

// runBaseline executes a baseline method and evaluates it with measured
// wall time.
func runBaseline(m baselines.Method, reads []fasta.Record, truth []string, opt baselines.Options, cfg Config) (Row, error) {
	start := time.Now()
	labels, err := m.Cluster(reads, opt)
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s: %w", m.Name(), err)
	}
	elapsed := time.Since(start)
	sum, err := metrics.Evaluate(m.Name(), labels, truth, seqsOf(reads), cfg.SimOptions, elapsed)
	if err != nil {
		return Row{}, err
	}
	if cfg.TrimCounts {
		sum.NumClusters = labels.NumClustersAtLeast(cfg.SimOptions.MinClusterSize + 1)
	}
	return Row{Method: m.Name(), Summary: sum}, nil
}

// slug makes a run name directory-safe ("MrMC-MinH^h" -> "mrmc-minh-h").
func slug(name string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// seqsOf projects record sequences.
func seqsOf(reads []fasta.Record) [][]byte {
	out := make([][]byte, len(reads))
	for i := range reads {
		out[i] = reads[i].Seq
	}
	return out
}
