package cluster

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// Incremental is an online version of Algorithm 1: reads arrive one at a
// time (a sequencer streaming out of a run, or an HDFS ingest pipe) and
// are labelled immediately against the representatives seen so far. The
// greedy algorithm is inherently order-sensitive, so the incremental and
// batch variants agree given the same arrival order.
type Incremental struct {
	opt GreedyOptions
	// lsh, when non-nil, indexes representatives for sub-linear lookup.
	lsh *minhash.BandIndex
	// reps holds prepared representative signatures: indexed by label on
	// the exact-scan path, by LSH id when lsh is non-nil.
	reps    []minhash.Prepared
	repOf   []int // lsh id -> cluster label (when lsh is used)
	nLabels int
	nReads  int
}

// NewIncremental starts an empty online clusterer. Pass a nil lshGeometry
// for exact representative scans, or a geometry (see GeometryFor) for the
// banded fast path.
func NewIncremental(opt GreedyOptions, lshGeometry *LSHOptions) (*Incremental, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	inc := &Incremental{opt: opt}
	if lshGeometry != nil {
		idx, err := minhash.NewBandIndex(lshGeometry.Bands, lshGeometry.Rows)
		if err != nil {
			return nil, err
		}
		inc.lsh = idx
	}
	return inc, nil
}

// Add labels one signature and returns its cluster id. New clusters are
// created on demand; labels are stable for the lifetime of the clusterer.
func (inc *Incremental) Add(sig minhash.Signature) (int, error) {
	if inc.lsh != nil && len(sig) < inc.lsh.SignatureLen() {
		return 0, fmt.Errorf("cluster: signature length %d below LSH geometry %d", len(sig), inc.lsh.SignatureLen())
	}
	inc.nReads++
	prep := minhash.Prepare(sig)
	if !sig.Empty() {
		if inc.lsh != nil {
			for _, cand := range inc.lsh.Candidates(sig) {
				if inc.opt.Estimator.SimilarityPrepared(prep, inc.reps[cand]) >= inc.opt.Threshold {
					return inc.repOf[cand], nil
				}
			}
		} else {
			for label, rep := range inc.reps {
				if inc.opt.Estimator.SimilarityPrepared(prep, rep) >= inc.opt.Threshold {
					return label, nil
				}
			}
		}
	}
	label := inc.nLabels
	inc.nLabels++
	if inc.lsh != nil {
		id, err := inc.lsh.Add(sig)
		if err != nil {
			return 0, err
		}
		if id != len(inc.repOf) {
			return 0, fmt.Errorf("cluster: LSH index id drift")
		}
		inc.repOf = append(inc.repOf, label)
	}
	inc.reps = append(inc.reps, prep)
	return label, nil
}

// NumClusters returns the number of clusters created so far.
func (inc *Incremental) NumClusters() int { return inc.nLabels }

// NumReads returns the number of signatures processed.
func (inc *Incremental) NumReads() int { return inc.nReads }
