package cluster

import (
	"fmt"
	"slices"
	"strconv"

	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

// Edge is one undirected candidate-pair edge between two read indices.
type Edge struct {
	U, V int
}

// CCOptions parameterizes the MapReduce connected-components run.
type CCOptions struct {
	// MaxRounds bounds the alternating Large-Star/Small-Star rounds (0 =
	// DefaultCCMaxRounds). The star operations preserve connectivity, so
	// hitting the bound still yields exact components — only the modelled
	// per-round cost stops accruing.
	MaxRounds int
	// NumReducers per star job (0 = cluster node count).
	NumReducers int
	// ShuffleBufferBytes routes the star jobs onto the external
	// spill-and-merge shuffle (see mapreduce.Job.ShuffleBufferBytes).
	ShuffleBufferBytes int
}

// DefaultCCMaxRounds bounds the alternating rounds far above the
// logarithmic count any real graph needs (2^64 nodes would converge first).
const DefaultCCMaxRounds = 64

// CCStats reports how a connected-components run converged.
type CCStats struct {
	// Rounds is the number of Large-Star/Small-Star round pairs executed.
	Rounds int
	// Converged reports whether the edge set reached a fixed point within
	// MaxRounds (labels are exact either way).
	Converged bool
	// InputEdges counts the distinct canonical input edges; FinalEdges the
	// star edges of the converged graph (one per non-minimum member).
	InputEdges int
	FinalEdges int
}

// ConnectedComponents is the sequential union-find reference: labels[i] is
// the smallest read index in i's component, the oracle that
// ConnectedComponentsMR must reproduce exactly.
func ConnectedComponents(n int, edges []Edge) ([]int, error) {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("cluster: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[rv] = ru
		}
	}
	// Label every node with the minimum member of its component.
	min := make([]int, n)
	for i := range min {
		min[i] = -1
	}
	for i := 0; i < n; i++ {
		r := find(i)
		if min[r] < 0 || i < min[r] {
			min[r] = i
		}
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = min[find(i)]
	}
	return labels, nil
}

// ConnectedComponentsMR finds the connected components of the candidate
// graph with Rastogi et al.'s logarithmic-round algorithm ("Finding
// Connected Components in Map-Reduce in Logarithmic Rounds"): alternate
// the Large-Star and Small-Star operations, each a MapReduce job on the
// simulated engine, until the edge set is a fixed point — a forest of
// stars whose centers are the component minima. labels[i] is the smallest
// read index of i's component, identical to ConnectedComponents. The
// returned results carry each job's virtual time and counters (the
// engine's per-job counters plus cc.round/cc.active_edges recorded by the
// driver).
func ConnectedComponentsMR(engine *mapreduce.Engine, n int, edges []Edge, opt CCOptions) ([]int, []*mapreduce.Result, CCStats, error) {
	var stats CCStats
	cur, err := canonicalEdges(n, edges)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.InputEdges = len(cur)
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultCCMaxRounds
	}
	var results []*mapreduce.Result
	for stats.Rounds < maxRounds && len(cur) > 0 {
		large, lres, err := starJob(engine, cur, opt, true)
		if err != nil {
			return nil, nil, stats, err
		}
		small, sres, err := starJob(engine, large, opt, false)
		if err != nil {
			return nil, nil, stats, err
		}
		stats.Rounds++
		for _, r := range []*mapreduce.Result{lres, sres} {
			r.Counters.Add("cc.rounds", 1) // each job belongs to one round
			r.Counters.Add("cc.active_edges", int64(len(cur)))
			results = append(results, r)
		}
		if slices.Equal(small, cur) {
			stats.Converged = true
			cur = small
			break
		}
		cur = small
	}
	if len(cur) == 0 {
		stats.Converged = true
	}
	stats.FinalEdges = len(cur)
	// Label extraction. At the fixed point cur is a star forest and this
	// is a direct read-off; before MaxRounds exhaustion it is still exact
	// because both star operations preserve connectivity.
	labels, err := ConnectedComponents(n, cur)
	if err != nil {
		return nil, nil, stats, err
	}
	return labels, results, stats, nil
}

// canonicalEdges validates, orients (min,max), sorts and dedups an edge
// list, dropping self-loops — the normal form compared across rounds.
func canonicalEdges(n int, edges []Edge) ([]Edge, error) {
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("cluster: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		out = append(out, e)
	}
	slices.SortFunc(out, compareEdges)
	return slices.Compact(out), nil
}

func compareEdges(a, b Edge) int {
	if a.U != b.U {
		return a.U - b.U
	}
	return a.V - b.V
}

// nodeKey formats a node id as a fixed-width shuffle key so lexicographic
// and numeric order agree.
func nodeKey(u int) string { return fmt.Sprintf("%012d", u) }

// starJob runs one Large-Star (large=true) or Small-Star operation as a
// MapReduce job and returns the canonicalized output edge set.
//
//   - Large-Star groups the full neighborhood Γ(u) at every node u and
//     connects each strictly larger neighbor to m = min(Γ(u) ∪ {u}):
//     emit (v, m) for v ∈ Γ(u), v > u.
//   - Small-Star groups each edge at its larger endpoint and connects
//     every gathered node (and u itself) to the minimum:
//     emit (v, m) for v ∈ Γ(u) ∪ {u} \ {m}.
//
// Both operations preserve connectivity; alternating them converges to
// per-component stars centered on the minimum node in a logarithmic
// number of rounds.
func starJob(engine *mapreduce.Engine, edges []Edge, opt CCOptions, large bool) ([]Edge, *mapreduce.Result, error) {
	name := "cc-small-star"
	if large {
		name = "cc-large-star"
	}
	records := make([]mapreduce.KeyValue, len(edges))
	for i, e := range edges {
		records[i] = mapreduce.KeyValue{Key: nodeKey(e.U) + ":" + nodeKey(e.V), Value: e}
	}
	job := &mapreduce.Job{
		Name:               name,
		Input:              mapreduce.MemoryInput{Records: records, SplitSize: ccSplitSize(len(records), engine.Cluster)},
		NumReducers:        opt.NumReducers,
		ShuffleBufferBytes: opt.ShuffleBufferBytes,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			e := kv.Value.(Edge)
			if large {
				emit(mapreduce.KeyValue{Key: nodeKey(e.U), Value: e.V})
				emit(mapreduce.KeyValue{Key: nodeKey(e.V), Value: e.U})
			} else {
				// Canonical edges already satisfy U < V: group at the
				// larger endpoint.
				emit(mapreduce.KeyValue{Key: nodeKey(e.V), Value: e.U})
			}
			return nil
		},
		Reduce: func(key string, values []any, emit func(mapreduce.KeyValue)) error {
			u, err := strconv.Atoi(key)
			if err != nil {
				return fmt.Errorf("cluster: bad star key %q: %w", key, err)
			}
			m := u
			for _, v := range values {
				if n := v.(int); n < m {
					m = n
				}
			}
			out := func(v int) {
				emit(mapreduce.KeyValue{Key: nodeKey(v) + ":" + nodeKey(m), Value: Edge{U: v, V: m}})
			}
			if large {
				for _, v := range values {
					if n := v.(int); n > u {
						out(n)
					}
				}
			} else {
				for _, v := range values {
					if n := v.(int); n != m {
						out(n)
					}
				}
				if u != m {
					out(u)
				}
			}
			return nil
		},
	}
	res, err := engine.Run(job)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Edge, 0, len(res.Output))
	for _, kv := range res.Output {
		out = append(out, kv.Value.(Edge))
	}
	// The star graph is a set: canonicalize for the fixed-point test.
	maxNode := 0
	for _, e := range out {
		if e.U > maxNode {
			maxNode = e.U
		}
		if e.V > maxNode {
			maxNode = e.V
		}
	}
	canon, err := canonicalEdges(maxNode+1, out)
	if err != nil {
		return nil, nil, err
	}
	return canon, res, nil
}

// ccSplitSize sizes in-memory splits for the cluster (two waves per slot),
// mirroring the pipeline's split policy.
func ccSplitSize(n int, c mapreduce.Cluster) int {
	waves := 2 * c.TotalSlots()
	size := (n + waves - 1) / waves
	if size < 1 {
		size = 1
	}
	return size
}
