// Package cluster implements the paper's two clustering algorithms over
// minwise-hash signatures: the greedy incremental procedure (Algorithm 1)
// and agglomerative hierarchical clustering over an all-pairs similarity
// matrix (Algorithm 2) with single, average and complete linkage.
package cluster

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// GreedyOptions parameterizes Algorithm 1.
type GreedyOptions struct {
	// Threshold θ: a sequence joins the current cluster when its estimated
	// Jaccard similarity to the representative is at least θ.
	Threshold float64
	// Estimator selects how signature similarity is computed; the paper's
	// Algorithm 1 line 9 uses minhash.SetOverlap.
	Estimator minhash.Estimator
}

// Validate rejects out-of-range thresholds.
func (o GreedyOptions) Validate() error {
	if o.Threshold < 0 || o.Threshold > 1 {
		return fmt.Errorf("cluster: threshold must be in [0,1], got %v", o.Threshold)
	}
	return nil
}

// Greedy runs Algorithm 1: repeatedly take the first unassigned sequence
// as a new cluster's representative, then sweep all remaining unassigned
// sequences into the cluster when their similarity to the representative
// reaches the threshold. Sequences with empty signatures each form their
// own singleton cluster (they carry no features to compare).
func Greedy(sigs []minhash.Signature, opt GreedyOptions) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := len(sigs)
	prep := minhash.PrepareAll(sigs)
	assign := make(metrics.Clustering, n)
	for i := range assign {
		assign[i] = -1
	}
	next := 0
	for first := 0; first < n; first++ {
		if assign[first] >= 0 {
			continue
		}
		label := next
		next++
		assign[first] = label
		rep := prep[first]
		if rep.Empty() {
			continue // nothing can match an empty signature
		}
		for j := first + 1; j < n; j++ {
			if assign[j] >= 0 {
				continue
			}
			if opt.Estimator.SimilarityPrepared(rep, prep[j]) >= opt.Threshold {
				assign[j] = label
			}
		}
	}
	return assign, nil
}

// GreedyOrdered is Greedy with an explicit processing order (useful for
// abundance-sorted variants like CD-HIT's longest-first strategy). order
// must be a permutation of [0,len(sigs)).
func GreedyOrdered(sigs []minhash.Signature, order []int, opt GreedyOptions) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(order) != len(sigs) {
		return nil, fmt.Errorf("cluster: order has %d entries for %d signatures", len(order), len(sigs))
	}
	n := len(sigs)
	seen := make([]bool, n)
	for _, idx := range order {
		if idx < 0 || idx >= n || seen[idx] {
			return nil, fmt.Errorf("cluster: order is not a permutation")
		}
		seen[idx] = true
	}
	prep := minhash.PrepareAll(sigs)
	assign := make(metrics.Clustering, n)
	for i := range assign {
		assign[i] = -1
	}
	next := 0
	for oi, first := range order {
		if assign[first] >= 0 {
			continue
		}
		label := next
		next++
		assign[first] = label
		rep := prep[first]
		if rep.Empty() {
			continue
		}
		for _, j := range order[oi+1:] {
			if assign[j] >= 0 {
				continue
			}
			if opt.Estimator.SimilarityPrepared(rep, prep[j]) >= opt.Threshold {
				assign[j] = label
			}
		}
	}
	return assign, nil
}
