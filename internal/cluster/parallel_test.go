package cluster

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// benchSigs sketches n overlapping k-mer sets at the paper's defaults
// (k=5, 100 hashes), mixing near-duplicate groups with background reads
// so similarity values span the full range.
func benchSigs(n int, seed int64) []minhash.Signature {
	rng := rand.New(rand.NewSource(seed))
	sk := minhash.MustSketcher(100, 5, 1)
	sigs := make([]minhash.Signature, n)
	base := make([]uint64, 200)
	for i := range base {
		base[i] = rng.Uint64() % kmer.FeatureSpace(5)
	}
	for i := range sigs {
		set := kmer.Set{}
		for _, x := range base[:50+rng.Intn(100)] { // shared core
			set.Add(x)
		}
		for j := 0; j < 100; j++ { // private tail
			set.Add(rng.Uint64() % kmer.FeatureSpace(5))
		}
		sigs[i] = sk.Sketch(set)
	}
	return sigs
}

// TestBuildMatrixParallelMatchesSequential pins the tiled parallel
// builder to the legacy sequential reference, cell for cell, for both
// estimators and several worker counts (including counts that do not
// divide the tile grid).
func TestBuildMatrixParallelMatchesSequential(t *testing.T) {
	sigs := benchSigs(150, 3)
	sigs[17] = minhash.Signature(nil)                             // nil signature
	sigs[63] = minhash.MustSketcher(100, 5, 1).Sketch(kmer.Set{}) // empty feature set
	for _, est := range []minhash.Estimator{minhash.SetOverlap, minhash.MatchedPositions} {
		want := SimilarityMatrix(sigs, est)
		for _, workers := range []int{0, 1, 2, 3, 7, 16} {
			got := BuildMatrixParallel(sigs, est, workers)
			if got.N() != want.N() {
				t.Fatalf("est %v workers %d: size %d != %d", est, workers, got.N(), want.N())
			}
			for i := 0; i < want.N(); i++ {
				for j := 0; j < want.N(); j++ {
					if got.Get(i, j) != want.Get(i, j) {
						t.Fatalf("est %v workers %d: cell (%d,%d) = %v, want %v", est, workers, i, j, got.Get(i, j), want.Get(i, j))
					}
				}
			}
		}
	}
}

func TestBuildMatrixParallelFuncTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		m := BuildMatrixParallelFunc(n, 4, func(i, j int) float64 { return 0.5 })
		if m.N() != n {
			t.Fatalf("n=%d: got size %d", n, m.N())
		}
		if n == 2 && (m.Get(0, 1) != 0.5 || m.Get(1, 0) != 0.5) {
			t.Fatal("n=2: pair cell not filled symmetrically")
		}
	}
}

// TestBuildMatrixParallelConcurrentStress drives many concurrent builds
// with more workers than row blocks; run under -race (the CI race job
// covers this package) it proves the row-block writers never overlap.
func TestBuildMatrixParallelConcurrentStress(t *testing.T) {
	sigs := benchSigs(130, 5) // 3 row blocks of 64, workers capped to blocks
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := BuildMatrixParallel(sigs, minhash.SetOverlap, 8)
			for i := 0; i < m.N(); i++ {
				for j := 0; j < i; j++ {
					if m.Get(i, j) != m.Get(j, i) {
						t.Errorf("asymmetric cell (%d,%d)", i, j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestHierarchicalKernelPathEquivalence is the acceptance check at the
// paper's whole-metagenome defaults (k=5, n=100 hashes, θ=0.9): the
// legacy sequential matrix and the parallel prepared-kernel matrix must
// produce identical dendrograms and identical flat clusterings.
func TestHierarchicalKernelPathEquivalence(t *testing.T) {
	sigs := benchSigs(120, 9)
	for _, link := range []Linkage{Single, Average, Complete} {
		legacy, err := Hierarchical(SimilarityMatrix(sigs, minhash.SetOverlap), HierarchicalOptions{Linkage: link})
		if err != nil {
			t.Fatal(err)
		}
		kernel, err := Hierarchical(BuildMatrixParallel(sigs, minhash.SetOverlap, 0), HierarchicalOptions{Linkage: link})
		if err != nil {
			t.Fatal(err)
		}
		if len(legacy.Merges) != len(kernel.Merges) {
			t.Fatalf("link %v: %d merges vs %d", link, len(legacy.Merges), len(kernel.Merges))
		}
		for i := range legacy.Merges {
			if legacy.Merges[i] != kernel.Merges[i] {
				t.Fatalf("link %v: merge %d differs: %+v vs %+v", link, i, legacy.Merges[i], kernel.Merges[i])
			}
		}
		la, lb := legacy.CutAt(0.9), kernel.CutAt(0.9)
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("link %v: label %d differs", link, i)
			}
		}
	}
}

// BenchmarkBuildMatrixSequential500 is the pre-kernel all-pairs build:
// per-pair set-overlap with re-sorting allocations, single-threaded.
func BenchmarkBuildMatrixSequential500(b *testing.B) {
	sigs := benchSigs(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SimilarityMatrix(sigs, minhash.SetOverlap)
	}
}

// BenchmarkBuildMatrixParallel500 is the kernel path: prepared
// signatures, tiled row blocks over all cores.
func BenchmarkBuildMatrixParallel500(b *testing.B) {
	sigs := benchSigs(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildMatrixParallel(sigs, minhash.SetOverlap, 0)
	}
}

// BenchmarkBuildMatrixParallel500OneWorker isolates the kernel gain from
// the parallel gain: prepared signatures on a single worker.
func BenchmarkBuildMatrixParallel500OneWorker(b *testing.B) {
	sigs := benchSigs(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildMatrixParallel(sigs, minhash.SetOverlap, 1)
	}
}
