package cluster

import (
	"testing"

	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

func TestCutLevelsNested(t *testing.T) {
	d, err := Hierarchical(knownMatrix(), HierarchicalOptions{Linkage: Average})
	if err != nil {
		t.Fatal(err)
	}
	levels := d.CutLevels([]float64{0.05, 0.7, 0.95, 0.7}) // dup collapses
	if len(levels) != 3 {
		t.Fatalf("got %d levels", len(levels))
	}
	// Finest first.
	if levels[0].Theta != 0.95 || levels[2].Theta != 0.05 {
		t.Fatalf("levels order %v %v", levels[0].Theta, levels[2].Theta)
	}
	// Cluster counts shrink toward coarser levels.
	for i := 1; i < len(levels); i++ {
		if levels[i].Clusters > levels[i-1].Clusters {
			t.Fatalf("level %d has more clusters than finer level", i)
		}
	}
	if !LevelsAreNested(levels) {
		t.Fatal("dendrogram levels not nested")
	}
}

func TestLevelsAreNestedDetectsViolation(t *testing.T) {
	fine := Level{Theta: 0.9, Labels: []int{0, 0, 1, 1}}
	badCoarse := Level{Theta: 0.5, Labels: []int{0, 1, 0, 1}} // splits fine cluster 0
	if LevelsAreNested([]Level{fine, badCoarse}) {
		t.Fatal("violation not detected")
	}
	short := Level{Theta: 0.5, Labels: []int{0}}
	if LevelsAreNested([]Level{fine, short}) {
		t.Fatal("length mismatch not detected")
	}
	goodCoarse := Level{Theta: 0.5, Labels: []int{0, 0, 0, 0}}
	if !LevelsAreNested([]Level{fine, goodCoarse}) {
		t.Fatal("valid nesting rejected")
	}
}

func TestRepresentatives(t *testing.T) {
	sigs, _ := sketchGroups(t, 2, 5, 31)
	labels, err := Greedy(sigs, GreedyOptions{Threshold: 0.5, Estimator: minhash.MatchedPositions})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := Representatives(labels, sigs, minhash.MatchedPositions)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != labels.NumClusters() {
		t.Fatalf("%d reps for %d clusters", len(reps), labels.NumClusters())
	}
	for id, rep := range reps {
		if labels[rep] != id {
			t.Fatalf("rep %d not a member of cluster %d", rep, id)
		}
	}
}

func TestRepresentativesSingleton(t *testing.T) {
	sk := minhash.MustSketcher(10, 5, 1)
	sigs := []minhash.Signature{sk.Sketch(kmer.FromSlice([]uint64{1, 2}))}
	reps, err := Representatives([]int{0}, sigs, minhash.MatchedPositions)
	if err != nil || reps[0] != 0 {
		t.Fatalf("reps %v err %v", reps, err)
	}
}

func TestRepresentativesMedoidChoice(t *testing.T) {
	// Three signatures: a and b identical, c distinct but same cluster.
	// The medoid must be a or b (highest summed similarity), never c.
	sk := minhash.MustSketcher(60, 8, 2)
	shared := kmer.FromSlice([]uint64{10, 20, 30, 40, 50})
	distinct := kmer.FromSlice([]uint64{10, 20, 99, 98, 97})
	sigs := []minhash.Signature{sk.Sketch(shared), sk.Sketch(shared), sk.Sketch(distinct)}
	reps, err := Representatives([]int{0, 0, 0}, sigs, minhash.MatchedPositions)
	if err != nil {
		t.Fatal(err)
	}
	if reps[0] == 2 {
		t.Fatal("outlier chosen as medoid")
	}
}

func TestRepresentativesValidation(t *testing.T) {
	if _, err := Representatives([]int{0, 0}, nil, minhash.MatchedPositions); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
