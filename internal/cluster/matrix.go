package cluster

import "fmt"

// Matrix is a symmetric all-pairs similarity matrix (float32 to halve the
// memory of the paper's dominant data structure). The diagonal is fixed
// at 1.
type Matrix struct {
	n    int
	data []float32
}

// NewMatrix allocates an n×n similarity matrix initialized to zero
// off-diagonal similarity.
func NewMatrix(n int) (*Matrix, error) {
	if n < 0 {
		return nil, fmt.Errorf("cluster: negative matrix size %d", n)
	}
	return &Matrix{n: n, data: make([]float32, n*n)}, nil
}

// MustMatrix is NewMatrix panicking on error.
func MustMatrix(n int) *Matrix {
	m, err := NewMatrix(n)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// Set stores similarity v between i and j (both orders).
func (m *Matrix) Set(i, j int, v float64) {
	if i == j {
		return
	}
	m.data[i*m.n+j] = float32(v)
	m.data[j*m.n+i] = float32(v)
}

// SetRow fills row i from a dense slice of length N (used by the MR path,
// which computes whole rows in map tasks). Both triangles are written —
// (i,j) and (j,i) — so a matrix assembled row by row is symmetric without
// a separate Symmetrize pass. Values at [i] are ignored.
func (m *Matrix) SetRow(i int, row []float64) error {
	if len(row) != m.n {
		return fmt.Errorf("cluster: row length %d != matrix size %d", len(row), m.n)
	}
	for j, v := range row {
		if j != i {
			m.data[i*m.n+j] = float32(v)
			m.data[j*m.n+i] = float32(v)
		}
	}
	return nil
}

// rowSlice exposes row i's backing storage for kernel-level writers
// (BuildMatrixParallel fills disjoint row blocks lock-free).
func (m *Matrix) rowSlice(i int) []float32 {
	return m.data[i*m.n : (i+1)*m.n]
}

// Get returns the similarity between i and j (1 on the diagonal).
func (m *Matrix) Get(i, j int) float64 {
	if i == j {
		return 1
	}
	return float64(m.data[i*m.n+j])
}

// Symmetrize copies the max of (i,j) and (j,i) into both cells. Set and
// SetRow already write both triangles, so this is only needed for
// matrices whose cells were filled from genuinely asymmetric sources.
func (m *Matrix) Symmetrize() {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			a, b := m.data[i*m.n+j], m.data[j*m.n+i]
			if a < b {
				a = b
			}
			m.data[i*m.n+j], m.data[j*m.n+i] = a, a
		}
	}
}
