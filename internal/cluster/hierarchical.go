package cluster

import (
	"fmt"
	"sort"

	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// Linkage selects the cluster-pair similarity update rule.
type Linkage int

const (
	// Single linkage merges on the most similar member pair.
	Single Linkage = iota
	// Average linkage merges on the size-weighted mean similarity (UPGMA).
	Average
	// Complete linkage merges on the least similar member pair.
	Complete
)

// ParseLinkage maps the paper's $LINK parameter values.
func ParseLinkage(s string) (Linkage, error) {
	switch s {
	case "single":
		return Single, nil
	case "average":
		return Average, nil
	case "complete":
		return Complete, nil
	default:
		return 0, fmt.Errorf("cluster: unknown linkage %q (want single, average or complete)", s)
	}
}

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Average:
		return "average"
	case Complete:
		return "complete"
	default:
		return "unknown"
	}
}

// Merge records one dendrogram join: clusters containing representatives
// A and B merged at the given similarity level.
type Merge struct {
	A, B       int
	Similarity float64
}

// Dendrogram is the full merge history of agglomerative clustering over n
// leaves (n-1 merges, not ordered by similarity for non-single linkages;
// use CutAt to extract flat clusterings).
type Dendrogram struct {
	N      int
	Merges []Merge
}

// HierarchicalOptions parameterizes Algorithm 2.
type HierarchicalOptions struct {
	Linkage Linkage
}

// Hierarchical builds the complete dendrogram from a similarity matrix
// using the nearest-neighbor-chain algorithm, which is exact for the
// reducible linkages single/average/complete and runs in O(n²) time and
// memory. The matrix is consumed (its cells are overwritten during
// merging) — pass a copy if it is needed afterwards.
func Hierarchical(m *Matrix, opt HierarchicalOptions) (*Dendrogram, error) {
	if opt.Linkage != Single && opt.Linkage != Average && opt.Linkage != Complete {
		return nil, fmt.Errorf("cluster: invalid linkage %d", opt.Linkage)
	}
	n := m.N()
	d := &Dendrogram{N: n}
	if n <= 1 {
		return d, nil
	}
	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}
	remaining := n
	chain := make([]int, 0, n)
	for remaining > 1 {
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if active[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		for {
			tip := chain[len(chain)-1]
			// Nearest neighbor of tip: highest similarity, ties broken by
			// smallest index for determinism.
			nn, best := -1, -1.0
			for j := 0; j < n; j++ {
				if j == tip || !active[j] {
					continue
				}
				if s := m.Get(tip, j); s > best {
					best, nn = s, j
				}
			}
			if len(chain) >= 2 && nn == chain[len(chain)-2] {
				// Reciprocal pair: merge tip and nn.
				a, b := chain[len(chain)-2], tip
				chain = chain[:len(chain)-2]
				d.Merges = append(d.Merges, Merge{A: a, B: b, Similarity: best})
				mergeInto(m, active, size, a, b, opt.Linkage)
				remaining--
				break
			}
			chain = append(chain, nn)
		}
	}
	return d, nil
}

// mergeInto folds cluster b into cluster a, updating row a by the linkage
// rule and deactivating b.
func mergeInto(m *Matrix, active []bool, size []int, a, b int, link Linkage) {
	na, nb := float64(size[a]), float64(size[b])
	for k := 0; k < m.N(); k++ {
		if k == a || k == b || !active[k] {
			continue
		}
		sa, sb := m.Get(a, k), m.Get(b, k)
		var s float64
		switch link {
		case Single:
			s = sa
			if sb > s {
				s = sb
			}
		case Complete:
			s = sa
			if sb < s {
				s = sb
			}
		default: // Average
			s = (na*sa + nb*sb) / (na + nb)
		}
		m.Set(a, k, s)
	}
	size[a] += size[b]
	active[b] = false
}

// CutAt flattens the dendrogram at similarity threshold θ: all merges at
// similarity >= θ are applied, and connected components become clusters.
// Cluster labels are assigned in first-member order.
func (d *Dendrogram) CutAt(theta float64) metrics.Clustering {
	parent := make([]int, d.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, mg := range d.Merges {
		if mg.Similarity >= theta {
			ra, rb := find(mg.A), find(mg.B)
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	labels := make(metrics.Clustering, d.N)
	next := 0
	byRoot := make(map[int]int)
	for i := 0; i < d.N; i++ {
		r := find(i)
		l, ok := byRoot[r]
		if !ok {
			l = next
			next++
			byRoot[r] = l
		}
		labels[i] = l
	}
	return labels
}

// Heights returns the merge similarities sorted descending — the levels at
// which the dendrogram changes shape, useful for multi-level OTU reports.
func (d *Dendrogram) Heights() []float64 {
	hs := make([]float64, len(d.Merges))
	for i, m := range d.Merges {
		hs[i] = m.Similarity
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(hs)))
	return hs
}

// SimilarityMatrix computes the dense all-pairs matrix from signatures
// sequentially with the legacy per-pair estimator — the reference
// implementation that BuildMatrixParallel must match cell for cell.
// Production paths use BuildMatrixParallel (prepared signatures, tiled
// worker fan-out); the MapReduce row-parallel path lives in
// internal/core.
func SimilarityMatrix(sigs []minhash.Signature, est minhash.Estimator) *Matrix {
	n := len(sigs)
	m := MustMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, est.Similarity(sigs[i], sigs[j]))
		}
	}
	return m
}

// HierarchicalFromSignatures is the end-to-end Algorithm 2: matrix, then
// dendrogram, then cut at θ. The matrix is built with the parallel tiled
// kernel over all available cores.
func HierarchicalFromSignatures(sigs []minhash.Signature, est minhash.Estimator, link Linkage, theta float64) (metrics.Clustering, error) {
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("cluster: threshold must be in [0,1], got %v", theta)
	}
	m := BuildMatrixParallel(sigs, est, 0)
	d, err := Hierarchical(m, HierarchicalOptions{Linkage: link})
	if err != nil {
		return nil, err
	}
	return d.CutAt(theta), nil
}
