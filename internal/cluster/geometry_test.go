package cluster

import (
	"testing"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// collisionMidpoint finds the similarity s at which the banding's collision
// probability crosses 1/2 — the empirical S-curve threshold — by bisection
// (CollisionProbability is strictly increasing in s for s in (0,1)).
func collisionMidpoint(bands, rows int) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if minhash.CollisionProbability(mid, bands, rows) < 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TestGeometryForKneeProperty sweeps signature lengths and thresholds and
// checks the contract of GeometryFor: the returned banding fits the
// signature, its analytic knee (1/b)^(1/r) sits at or above θ, and the row
// count is minimal (one fewer row per band would undershoot θ). It also
// cross-validates the closed-form knee against the actual S-curve midpoint
// of CollisionProbability, which must agree within a small tolerance.
func TestGeometryForKneeProperty(t *testing.T) {
	ns := []int{8, 16, 24, 32, 50, 64, 100, 128, 200, 256, 512}
	thetas := []float64{0.5, 0.7, 0.9}
	for _, n := range ns {
		for _, theta := range thetas {
			g := GeometryFor(n, theta)
			if err := g.Validate(n); err != nil {
				t.Errorf("GeometryFor(%d, %.1f) = %+v invalid: %v", n, theta, g, err)
				continue
			}
			knee := kneeOf(g.Bands, g.Rows)
			if knee < theta {
				t.Errorf("GeometryFor(%d, %.1f) = %+v knee %.3f < θ", n, theta, g, knee)
			}
			// Minimality: the geometry one row shallower must undershoot θ
			// (otherwise GeometryFor would have stopped there).
			if g.Rows > 1 {
				prev := kneeOf(n/(g.Rows-1), g.Rows-1)
				if prev >= theta {
					t.Errorf("GeometryFor(%d, %.1f) = %+v not minimal: rows-1 knee %.3f ≥ θ",
						n, theta, g, prev)
				}
			}
			// The closed-form knee approximates where the real S-curve
			// crosses 1/2. The approximation drops the (1-1/e) correction,
			// so allow a loose but bounded tolerance.
			mid := collisionMidpoint(g.Bands, g.Rows)
			if d := knee - mid; d < -0.15 || d > 0.15 {
				t.Errorf("GeometryFor(%d, %.1f) = %+v: knee %.3f vs S-curve midpoint %.3f",
					n, theta, g, knee, mid)
			}
		}
	}
}

// TestGeometryForMoreRowsSharperCurve checks the qualitative LSH property
// the pipeline relies on: at a fixed signature budget, the geometry chosen
// for a higher θ yields a lower collision probability for dissimilar pairs
// (fewer junk candidates) while the verify threshold keeps precision.
func TestGeometryForMoreRowsSharperCurve(t *testing.T) {
	loose := GeometryFor(100, 0.5)
	tight := GeometryFor(100, 0.9)
	if tight.Rows <= loose.Rows {
		t.Fatalf("θ=0.9 geometry %+v not deeper than θ=0.5 %+v", tight, loose)
	}
	// A pair at similarity 0.3 should almost never collide under the tight
	// geometry but frequently under the loose one.
	pLoose := minhash.CollisionProbability(0.3, loose.Bands, loose.Rows)
	pTight := minhash.CollisionProbability(0.3, tight.Bands, tight.Rows)
	if pTight >= pLoose {
		t.Fatalf("P(collide|s=0.3): tight %.4f ≥ loose %.4f", pTight, pLoose)
	}
	if pTight > 0.01 {
		t.Fatalf("tight geometry %+v admits s=0.3 pairs with P=%.4f", tight, pTight)
	}
}

// TestCollisionProbabilityMonotone checks that the S-curve is monotone in s
// and pinned at the endpoints for a spread of geometries.
func TestCollisionProbabilityMonotone(t *testing.T) {
	geos := []LSHOptions{{Bands: 1, Rows: 1}, {Bands: 20, Rows: 5}, {Bands: 5, Rows: 17}, {Bands: 64, Rows: 2}}
	for _, g := range geos {
		if p := minhash.CollisionProbability(0, g.Bands, g.Rows); p != 0 {
			t.Errorf("%+v: P(collide|s=0) = %v", g, p)
		}
		if p := minhash.CollisionProbability(1, g.Bands, g.Rows); p != 1 {
			t.Errorf("%+v: P(collide|s=1) = %v", g, p)
		}
		prev := -1.0
		for s := 0.0; s <= 1.0001; s += 0.05 {
			p := minhash.CollisionProbability(s, g.Bands, g.Rows)
			if p < prev-1e-12 {
				t.Fatalf("%+v: P not monotone at s=%.2f (%.6f < %.6f)", g, s, p, prev)
			}
			prev = p
		}
	}
}

// TestGeometryForEdgeCases pins the degenerate inputs: signatures too short
// to band fall back to a single 1×1 band, and Validate rejects geometries
// deeper than the signature.
func TestGeometryForEdgeCases(t *testing.T) {
	for _, n := range []int{-3, 0, 1} {
		if g := GeometryFor(n, 0.9); g != (LSHOptions{Bands: 1, Rows: 1}) {
			t.Errorf("GeometryFor(%d, 0.9) = %+v, want 1×1", n, g)
		}
	}
	// θ=1 forces the deepest banding: a single band using every row, whose
	// knee (1/1)^(1/r) = 1 is the only way to reach the threshold.
	g := GeometryFor(10, 1)
	if g.Bands != 1 {
		t.Errorf("GeometryFor(10, 1) = %+v, want a single band", g)
	}
	if err := g.Validate(10); err != nil {
		t.Errorf("GeometryFor(10, 1) = %+v invalid: %v", g, err)
	}
	// rows > n can never validate, whatever the bands.
	if err := (LSHOptions{Bands: 1, Rows: 11}).Validate(10); err == nil {
		t.Error("rows > signature length accepted")
	}
	// θ=0 is satisfied immediately: a single row per band maximizes recall.
	if g := GeometryFor(100, 0); g.Rows != 1 {
		t.Errorf("GeometryFor(100, 0) = %+v, want rows=1", g)
	}
}
