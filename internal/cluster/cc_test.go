package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

func ccEngine(t testing.TB) *mapreduce.Engine {
	t.Helper()
	engine, err := mapreduce.NewEngine(mapreduce.Cluster{Nodes: 4, SlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func randomGraph(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{U: rng.Intn(n), V: rng.Intn(n)}
	}
	return edges
}

func TestConnectedComponentsUnionFind(t *testing.T) {
	labels, err := ConnectedComponents(6, []Edge{{0, 1}, {1, 2}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 3, 4, 4}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	if _, err := ConnectedComponents(3, []Edge{{0, 3}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestConnectedComponentsMRMatchesUnionFind(t *testing.T) {
	engine := ccEngine(t)
	cases := []struct{ n, m int }{
		{1, 0}, {2, 1}, {10, 5}, {50, 30}, {100, 200}, {200, 100}, {500, 1200},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			edges := randomGraph(tc.n, tc.m, seed*31+int64(tc.n))
			want, err := ConnectedComponents(tc.n, edges)
			if err != nil {
				t.Fatal(err)
			}
			got, results, stats, err := ConnectedComponentsMR(engine, tc.n, edges, CCOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d m=%d seed=%d: MR labels diverge from union-find\n got %v\nwant %v", tc.n, tc.m, seed, got, want)
			}
			if !stats.Converged {
				t.Fatalf("n=%d m=%d seed=%d: did not converge in %d rounds", tc.n, tc.m, seed, stats.Rounds)
			}
			if stats.InputEdges > 0 && len(results) != 2*stats.Rounds {
				t.Fatalf("expected 2 job results per round, got %d for %d rounds", len(results), stats.Rounds)
			}
		}
	}
}

func TestConnectedComponentsMRLogarithmicRounds(t *testing.T) {
	engine := ccEngine(t)
	// A path graph is the adversarial case for hook-to-min label
	// propagation (diameter n-1); the star transforms must still finish in
	// O(log n) rounds.
	for _, n := range []int{16, 64, 256, 1024} {
		edges := make([]Edge, n-1)
		for i := range edges {
			edges[i] = Edge{U: i, V: i + 1}
		}
		want, err := ConnectedComponents(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		got, _, stats, err := ConnectedComponentsMR(engine, n, edges, CCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("path n=%d: labels diverge", n)
		}
		bound := int(2*math.Log2(float64(n))) + 3
		if stats.Rounds > bound {
			t.Fatalf("path n=%d took %d rounds, want ≤ %d (logarithmic)", n, stats.Rounds, bound)
		}
		if stats.FinalEdges != n-1 {
			t.Fatalf("path n=%d: star forest has %d edges, want %d", n, stats.FinalEdges, n-1)
		}
	}
}

func TestConnectedComponentsMRDeterministic(t *testing.T) {
	engine := ccEngine(t)
	edges := randomGraph(300, 500, 42)
	first, _, firstStats, err := ConnectedComponentsMR(engine, 300, edges, CCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, _, stats, err := ConnectedComponentsMR(engine, 300, edges, CCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) || stats != firstStats {
			t.Fatalf("run %d: nondeterministic labels or stats", i)
		}
	}
}

func TestConnectedComponentsMREdgeCases(t *testing.T) {
	engine := ccEngine(t)

	labels, results, stats, err := ConnectedComponentsMR(engine, 5, nil, CCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, []int{0, 1, 2, 3, 4}) || len(results) != 0 || !stats.Converged {
		t.Fatalf("empty edge set: labels=%v results=%d converged=%v", labels, len(results), stats.Converged)
	}

	// Self-loops and duplicates collapse during canonicalization.
	labels, _, stats, err = ConnectedComponentsMR(engine, 4, []Edge{{2, 2}, {1, 0}, {0, 1}, {0, 1}}, CCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, []int{0, 0, 2, 3}) {
		t.Fatalf("labels = %v", labels)
	}
	if stats.InputEdges != 1 {
		t.Fatalf("InputEdges = %d, want 1 after dedup", stats.InputEdges)
	}

	if _, _, _, err := ConnectedComponentsMR(engine, 3, []Edge{{0, 7}}, CCOptions{}); err == nil {
		t.Fatal("expected out-of-range error")
	}

	// MaxRounds=1 on a long path: labels must still be exact (star
	// operations preserve connectivity) even though convergence is cut off.
	edges := make([]Edge, 63)
	for i := range edges {
		edges[i] = Edge{U: i, V: i + 1}
	}
	want, err := ConnectedComponents(64, edges)
	if err != nil {
		t.Fatal(err)
	}
	labels, _, stats, err = ConnectedComponentsMR(engine, 64, edges, CCOptions{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1", stats.Rounds)
	}
	if !reflect.DeepEqual(labels, want) {
		t.Fatal("MaxRounds cutoff changed the labels")
	}
}

func TestConnectedComponentsMRCounters(t *testing.T) {
	engine := ccEngine(t)
	edges := []Edge{{0, 1}, {1, 2}, {3, 4}}
	_, results, stats, err := ConnectedComponentsMR(engine, 5, edges, CCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no job results")
	}
	var rounds, active int64
	for _, r := range results {
		rounds += r.Counters.Get("cc.rounds")
		active += r.Counters.Get("cc.active_edges")
	}
	if rounds != int64(2*stats.Rounds) {
		t.Fatalf("cc.rounds total = %d, want %d", rounds, 2*stats.Rounds)
	}
	if active <= 0 {
		t.Fatalf("cc.active_edges total = %d, want > 0", active)
	}
}

// TestConnectedComponentsMRLargeStarFaults pins label bit-identity when the
// star jobs run under injected task crashes and a node death: recovery is
// lossless, so a faulted run must reproduce the fault-free labels exactly.
func TestConnectedComponentsMRLargeStarFaults(t *testing.T) {
	edges := randomGraph(200, 350, 9)
	clean := ccEngine(t)
	want, _, _, err := ConnectedComponentsMR(clean, 200, edges, CCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 1234} {
		faulted := ccEngine(t)
		faulted.Faults = faults.MustNew(faults.Plan{Seed: seed, TaskCrashProb: 0.2})
		got, _, _, err := ConnectedComponentsMR(faulted, 200, edges, CCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: faulted labels diverge from fault-free run", seed)
		}
	}
}

// TestConnectedComponentsMRSmallStarExternalShuffle routes the star jobs
// through the spill-and-merge external shuffle and checks labels match the
// in-memory path.
func TestConnectedComponentsMRSmallStarExternalShuffle(t *testing.T) {
	engine := ccEngine(t)
	edges := randomGraph(400, 900, 17)
	want, _, _, err := ConnectedComponentsMR(engine, 400, edges, CCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := ConnectedComponentsMR(engine, 400, edges, CCOptions{ShuffleBufferBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("external-shuffle labels diverge from in-memory shuffle")
	}
}
