package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// matrixTile is the row/column block edge of the parallel matrix build.
// A tile pair touches 2·matrixTile signatures (~100 sorted values each),
// small enough to stay in L2 while the tile's matrixTile² cells are
// filled.
const matrixTile = 64

// BuildMatrixParallel computes the all-pairs similarity matrix from
// signatures using a pool of workers (0 means GOMAXPROCS). Signatures
// are Prepared once so every pair comparison is allocation-free, and
// row blocks are fanned out over the pool with each worker writing only
// its own rows — lock-free and race-free by construction. The result is
// cell-for-cell identical to SimilarityMatrix regardless of worker
// count.
func BuildMatrixParallel(sigs []minhash.Signature, est minhash.Estimator, workers int) *Matrix {
	prep := minhash.PrepareAll(sigs)
	return BuildMatrixParallelFunc(len(sigs), workers, func(i, j int) float64 {
		return est.SimilarityPrepared(prep[i], prep[j])
	})
}

// BuildMatrixParallelFunc fills an n×n symmetric similarity matrix from
// an arbitrary pairwise kernel, tiled and fanned out over a worker pool
// (0 workers means GOMAXPROCS). sim is called once per unordered pair
// (i<j) and must be safe for concurrent calls; the diagonal is fixed at
// 1 by the Matrix type. The alignment-based baselines (DOTUR, Mothur,
// ESPRIT) share this builder with the sketch path.
func BuildMatrixParallelFunc(n, workers int, sim func(i, j int) float64) *Matrix {
	m := MustMatrix(n)
	if n < 2 {
		return m
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nBlocks := (n + matrixTile - 1) / matrixTile
	if workers > nBlocks {
		workers = nBlocks
	}

	// Phase 1: upper triangle. Each worker claims whole row blocks from
	// an atomic counter (dynamic balancing: early rows hold more pairs)
	// and sweeps them in column tiles for locality, writing only cells
	// (i,j) with i inside the claimed block and j > i.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo := b * matrixTile
				hi := min(n, lo+matrixTile)
				for jlo := lo; jlo < n; jlo += matrixTile {
					jhi := min(n, jlo+matrixTile)
					for i := lo; i < hi; i++ {
						row := m.rowSlice(i)
						for j := max(i+1, jlo); j < jhi; j++ {
							row[j] = float32(sim(i, j))
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	// Phase 2: mirror the lower triangle. Workers again own disjoint row
	// blocks and only write their own rows, reading the upper triangle
	// completed before the barrier above.
	next.Store(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo := b * matrixTile
				hi := min(n, lo+matrixTile)
				for i := lo; i < hi; i++ {
					row := m.rowSlice(i)
					for j := 0; j < i; j++ {
						row[j] = m.data[j*n+i]
					}
				}
			}
		}()
	}
	wg.Wait()
	return m
}
