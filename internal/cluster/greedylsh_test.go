package cluster

import (
	"testing"
	"time"

	"math/rand"

	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

func TestGeometryFor(t *testing.T) {
	g := GeometryFor(100, 0.5)
	if g.Bands*g.Rows > 100 {
		t.Fatalf("geometry %+v exceeds signature length", g)
	}
	knee := kneeOf(g.Bands, g.Rows)
	if knee < 0.35 || knee > 0.75 {
		t.Fatalf("knee %.2f for θ=0.5 (%+v)", knee, g)
	}
	// Higher θ wants more rows per band.
	tight := GeometryFor(100, 0.9)
	if tight.Rows < g.Rows {
		t.Fatalf("θ=0.9 geometry %+v not stricter than θ=0.5 %+v", tight, g)
	}
	// Degenerate inputs.
	if got := GeometryFor(1, 0.5); got.Bands != 1 || got.Rows != 1 {
		t.Fatalf("n=1 geometry %+v", got)
	}
}

func TestLSHOptionsValidate(t *testing.T) {
	if err := (LSHOptions{Bands: 0, Rows: 1}).Validate(10); err == nil {
		t.Error("bands=0 accepted")
	}
	if err := (LSHOptions{Bands: 4, Rows: 4}).Validate(10); err == nil {
		t.Error("oversized geometry accepted")
	}
	if err := (LSHOptions{Bands: 2, Rows: 5}).Validate(10); err != nil {
		t.Error(err)
	}
}

func TestGreedyLSHMatchesGreedyOnSeparatedGroups(t *testing.T) {
	sigs, truth := sketchGroups(t, 5, 10, 41)
	opt := GreedyOptions{Threshold: 0.5, Estimator: minhash.MatchedPositions}
	exact, err := Greedy(sigs, opt)
	if err != nil {
		t.Fatal(err)
	}
	lsh, err := GreedyLSH(sigs, opt, GeometryFor(len(sigs[0]), 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if exact.NumClusters() != lsh.NumClusters() {
		t.Fatalf("exact %d clusters vs LSH %d", exact.NumClusters(), lsh.NumClusters())
	}
	// Both must agree with ground truth exactly on this easy input.
	agreesWithTruth(t, lsh, truth, 5)
}

func TestGreedyLSHEmptyInputAndValidation(t *testing.T) {
	c, err := GreedyLSH(nil, GreedyOptions{Threshold: 0.5}, LSHOptions{Bands: 2, Rows: 2})
	if err != nil || len(c) != 0 {
		t.Fatalf("c=%v err=%v", c, err)
	}
	if _, err := GreedyLSH(nil, GreedyOptions{Threshold: 2}, LSHOptions{Bands: 2, Rows: 2}); err == nil {
		t.Fatal("bad threshold accepted")
	}
	sigs, _ := sketchGroups(t, 1, 3, 42)
	if _, err := GreedyLSH(sigs, GreedyOptions{Threshold: 0.5}, LSHOptions{Bands: 100, Rows: 100}); err == nil {
		t.Fatal("oversized geometry accepted")
	}
}

func TestGreedyLSHScalesBetterThanExact(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	// Many tiny clusters: exact greedy scans all representatives per
	// read (O(N·C)), LSH only bucket collisions.
	rng := rand.New(rand.NewSource(43))
	sk := minhash.MustSketcher(100, 10, 43)
	n := 1500
	sigs := make([]minhash.Signature, n)
	for i := range sigs {
		set := kmer.Set{}
		for len(set) < 80 {
			set.Add(rng.Uint64() % kmer.FeatureSpace(10))
		}
		sigs[i] = sk.Sketch(set)
	}
	opt := GreedyOptions{Threshold: 0.6, Estimator: minhash.MatchedPositions}
	start := time.Now()
	if _, err := Greedy(sigs, opt); err != nil {
		t.Fatal(err)
	}
	exactTime := time.Since(start)
	start = time.Now()
	if _, err := GreedyLSH(sigs, opt, GeometryFor(100, 0.6)); err != nil {
		t.Fatal(err)
	}
	lshTime := time.Since(start)
	if lshTime > exactTime {
		t.Fatalf("LSH path (%v) slower than exact (%v) on dust-heavy input", lshTime, exactTime)
	}
}
