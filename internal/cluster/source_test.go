package cluster

import (
	"math/rand"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// sourceTestSigs builds n deterministic signatures in g groups: members
// of a group share most slots (high Jaccard), across groups they are
// random — plus every emptyEvery-th signature empty.
func sourceTestSigs(n, numHashes, groups, emptyEvery int, seed int64) []minhash.Signature {
	rng := rand.New(rand.NewSource(seed))
	bases := make([]minhash.Signature, groups)
	for g := range bases {
		bases[g] = make(minhash.Signature, numHashes)
		for j := range bases[g] {
			bases[g][j] = rng.Uint64() % (1 << 61)
		}
	}
	sigs := make([]minhash.Signature, n)
	for i := range sigs {
		sig := make(minhash.Signature, numHashes)
		if emptyEvery > 0 && i%emptyEvery == emptyEvery-1 {
			for j := range sig {
				sig[j] = minhash.EmptyMin
			}
		} else {
			copy(sig, bases[i%groups])
			// perturb a few slots so within-group similarity is high but
			// not exactly 1
			for k := 0; k < 1+i%3; k++ {
				sig[rng.Intn(numHashes)] = rng.Uint64() % (1 << 61)
			}
		}
		sigs[i] = sig
	}
	return sigs
}

func clusteringsEqual(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

// TestGreedySourceEquivalence pins GreedySource over a SliceSource to be
// identical to the slice-backed Greedy oracle.
func TestGreedySourceEquivalence(t *testing.T) {
	sigs := sourceTestSigs(150, 40, 6, 11, 1)
	for _, est := range []minhash.Estimator{minhash.SetOverlap, minhash.MatchedPositions} {
		opt := GreedyOptions{Threshold: 0.6, Estimator: est}
		want, err := Greedy(sigs, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GreedySource(NewSliceSource(sigs, est), opt)
		if err != nil {
			t.Fatal(err)
		}
		clusteringsEqual(t, "GreedySource", got, want)
	}
	if _, err := GreedySource(NewSliceSource(nil, minhash.SetOverlap), GreedyOptions{Threshold: 2}); err == nil {
		t.Fatal("bad threshold: expected error")
	}
}

// TestGreedyLSHSourceEquivalence pins GreedyLSHSource — including its
// replicated BandIndex candidate ordering — identical to GreedyLSH.
func TestGreedyLSHSourceEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		sigs := sourceTestSigs(200, 40, 8, 13, seed)
		opt := GreedyOptions{Threshold: 0.6, Estimator: minhash.SetOverlap}
		lsh := LSHOptions{Bands: 8, Rows: 5}
		want, err := GreedyLSH(sigs, opt, lsh)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GreedyLSHSource(NewSliceSource(sigs, opt.Estimator), opt, lsh)
		if err != nil {
			t.Fatal(err)
		}
		clusteringsEqual(t, "GreedyLSHSource", got, want)
	}
}

func TestGreedyLSHSourceValidation(t *testing.T) {
	src := NewSliceSource(sourceTestSigs(10, 20, 2, 0, 4), minhash.SetOverlap)
	if _, err := GreedyLSHSource(src, GreedyOptions{Threshold: 0.5}, LSHOptions{Bands: 7, Rows: 5}); err == nil {
		t.Fatal("oversized geometry: expected error")
	}
	if _, err := GreedyLSHSource(src, GreedyOptions{Threshold: -1}, LSHOptions{Bands: 4, Rows: 5}); err == nil {
		t.Fatal("bad threshold: expected error")
	}
	empty := NewSliceSource(nil, minhash.SetOverlap)
	if _, err := GreedyLSHSource(empty, GreedyOptions{Threshold: 0.5}, LSHOptions{Bands: 0, Rows: 5}); err == nil {
		t.Fatal("zero bands: expected error even on empty input")
	}
	got, err := GreedyLSHSource(empty, GreedyOptions{Threshold: 0.5}, LSHOptions{Bands: 4, Rows: 5})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty source: got %v, %v", got, err)
	}
}

// TestHierarchicalFromSourceEquivalence pins HierarchicalFromSource
// identical to HierarchicalFromSignatures for every linkage.
func TestHierarchicalFromSourceEquivalence(t *testing.T) {
	sigs := sourceTestSigs(90, 30, 5, 10, 2)
	for _, link := range []Linkage{Single, Average, Complete} {
		want, err := HierarchicalFromSignatures(sigs, minhash.SetOverlap, link, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := HierarchicalFromSource(NewSliceSource(sigs, minhash.SetOverlap), link, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		clusteringsEqual(t, link.String(), got, want)
	}
	if _, err := HierarchicalFromSource(NewSliceSource(sigs, minhash.SetOverlap), Single, 1.5); err == nil {
		t.Fatal("bad threshold: expected error")
	}
}

// TestIncrementalSourceEquivalence pins IncrementalSource identical to
// Incremental given the same arrival order, with and without banding.
func TestIncrementalSourceEquivalence(t *testing.T) {
	sigs := sourceTestSigs(120, 40, 6, 9, 3)
	opt := GreedyOptions{Threshold: 0.6, Estimator: minhash.SetOverlap}
	for _, geo := range []*LSHOptions{nil, {Bands: 8, Rows: 5}} {
		ref, err := NewIncremental(opt, geo)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewIncrementalSource(NewSliceSource(sigs, opt.Estimator), opt, geo)
		if err != nil {
			t.Fatal(err)
		}
		for i, sig := range sigs {
			want, err := ref.Add(sig)
			if err != nil {
				t.Fatal(err)
			}
			got, err := src.Add(i)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("geo=%v read %d: label %d, want %d", geo, i, got, want)
			}
		}
		if src.NumClusters() != ref.NumClusters() || src.NumReads() != ref.NumReads() {
			t.Fatalf("geo=%v: counts %d/%d vs %d/%d", geo,
				src.NumClusters(), src.NumReads(), ref.NumClusters(), ref.NumReads())
		}
	}
	src, _ := NewIncrementalSource(NewSliceSource(sigs, opt.Estimator), opt, nil)
	if _, err := src.Add(len(sigs)); err == nil {
		t.Fatal("out-of-range index: expected error")
	}
}

// TestSubsetSourceProjects checks SubsetSource's index remapping against
// direct slicing.
func TestSubsetSourceProjects(t *testing.T) {
	sigs := sourceTestSigs(60, 30, 4, 7, 5)
	src := NewSliceSource(sigs, minhash.SetOverlap)
	ids := []int{3, 17, 41, 8, 59, 20}
	sub := Subset(src, ids)
	if sub.Len() != len(ids) || sub.NumHashes() != src.NumHashes() {
		t.Fatalf("subset geometry %d/%d", sub.Len(), sub.NumHashes())
	}
	picked := make([]minhash.Signature, len(ids))
	for i, id := range ids {
		picked[i] = sigs[id]
	}
	direct := NewSliceSource(picked, minhash.SetOverlap)
	for i := range ids {
		if sub.Empty(i) != direct.Empty(i) {
			t.Fatalf("Empty(%d) mismatch", i)
		}
		if sub.BandHash(i, 1, 5) != direct.BandHash(i, 1, 5) {
			t.Fatalf("BandHash(%d) mismatch", i)
		}
		for j := i + 1; j < len(ids); j++ {
			if sub.Similarity(i, j) != direct.Similarity(i, j) {
				t.Fatalf("Similarity(%d,%d) mismatch", i, j)
			}
		}
	}
	// Clustering a subset equals clustering the copied-out slice.
	opt := GreedyOptions{Threshold: 0.6, Estimator: minhash.SetOverlap}
	want, err := Greedy(picked, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GreedySource(sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	clusteringsEqual(t, "subset greedy", got, want)
}
