package cluster

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// SigSource is index-aligned, borrowed access to a signature corpus: the
// seam that lets the clustering algorithms run identically over
// per-run Go slices (SliceSource, the legacy oracle) and the resident
// sharded signature store (sigstore.View satisfies this interface
// structurally — cluster must not import sigstore). Implementations
// must be safe for concurrent Similarity/BandHash calls: the parallel
// matrix builder and map tasks fan pairs out over a worker pool.
type SigSource interface {
	// Len returns the number of signatures.
	Len() int
	// NumHashes returns the signature length n (for slice sources with
	// ragged lengths, the maximum — matching GreedyLSH's geometry check).
	NumHashes() int
	// Empty reports whether signature i came from an empty feature set.
	Empty(i int) bool
	// Similarity estimates the Jaccard similarity of signatures i and j,
	// bit-identical to Estimator.SimilarityPrepared on the same corpus
	// for full-width sources.
	Similarity(i, j int) float64
	// BandHash returns the LSH band hash of signature i.
	BandHash(i, band, rows int) uint64
}

// SliceSource adapts a signature slice (Prepared once, like every batch
// entry point) to SigSource. It is the slice-backed reference
// implementation the store-backed paths are equivalence-tested against.
type SliceSource struct {
	sigs   []minhash.Signature
	prep   []minhash.Prepared
	est    minhash.Estimator
	sigLen int
}

// NewSliceSource prepares sigs once and wraps them as a source.
func NewSliceSource(sigs []minhash.Signature, est minhash.Estimator) *SliceSource {
	sigLen := 0
	for _, s := range sigs {
		if len(s) > sigLen {
			sigLen = len(s)
		}
	}
	return &SliceSource{sigs: sigs, prep: minhash.PrepareAll(sigs), est: est, sigLen: sigLen}
}

func (s *SliceSource) Len() int       { return len(s.sigs) }
func (s *SliceSource) NumHashes() int { return s.sigLen }
func (s *SliceSource) Empty(i int) bool {
	return s.sigs[i].Empty()
}
func (s *SliceSource) Similarity(i, j int) float64 {
	return s.est.SimilarityPrepared(s.prep[i], s.prep[j])
}
func (s *SliceSource) BandHash(i, band, rows int) uint64 {
	return minhash.BandHash(s.sigs[i], band, rows)
}

// Sig returns the underlying signature for i (borrowed).
func (s *SliceSource) Sig(i int) minhash.Signature { return s.sigs[i] }

// PackedSig returns the zero value: slice sources hold full-width
// signatures only. (Mirrors sigstore.View's Sig/PackedSig pairing so
// both satisfy the pipeline's source interface.)
func (s *SliceSource) PackedSig(int) minhash.BBitSignature { return minhash.BBitSignature{} }

// SubsetSource restricts a source to ids: element i of the subset is
// element ids[i] of the parent. The per-component cluster stages use it
// to run the exact algorithms over one component's members without
// copying signatures out of the store.
type SubsetSource struct {
	src SigSource
	ids []int
}

// Subset returns a view of src restricted to ids (not copied; the caller
// must not mutate ids while the subset is in use).
func Subset(src SigSource, ids []int) *SubsetSource {
	return &SubsetSource{src: src, ids: ids}
}

func (s *SubsetSource) Len() int                    { return len(s.ids) }
func (s *SubsetSource) NumHashes() int              { return s.src.NumHashes() }
func (s *SubsetSource) Empty(i int) bool            { return s.src.Empty(s.ids[i]) }
func (s *SubsetSource) Similarity(i, j int) float64 { return s.src.Similarity(s.ids[i], s.ids[j]) }
func (s *SubsetSource) BandHash(i, band, rows int) uint64 {
	return s.src.BandHash(s.ids[i], band, rows)
}

// GreedySource runs Algorithm 1 (see Greedy) over any signature source.
// On a SliceSource it returns exactly Greedy's clustering; on a store
// view it is the path that clusters borrowed signatures without ever
// materializing them as slices.
func GreedySource(src SigSource, opt GreedyOptions) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := src.Len()
	assign := make(metrics.Clustering, n)
	for i := range assign {
		assign[i] = -1
	}
	next := 0
	for first := 0; first < n; first++ {
		if assign[first] >= 0 {
			continue
		}
		label := next
		next++
		assign[first] = label
		if src.Empty(first) {
			continue // nothing can match an empty signature
		}
		for j := first + 1; j < n; j++ {
			if assign[j] >= 0 {
				continue
			}
			if src.Similarity(first, j) >= opt.Threshold {
				assign[j] = label
			}
		}
	}
	return assign, nil
}

// GreedyLSHSource is GreedyLSH over any signature source. It replicates
// the BandIndex candidate discipline exactly — per-band buckets in
// insertion order, generation-stamped dedup, first-encounter-across-bands
// candidate order — so its clustering is identical to GreedyLSH on the
// same corpus.
func GreedyLSHSource(src SigSource, opt GreedyOptions, lsh LSHOptions) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := src.Len()
	if n > 0 {
		if err := lsh.Validate(src.NumHashes()); err != nil {
			return nil, err
		}
	}
	if lsh.Bands < 1 || lsh.Rows < 1 {
		return nil, fmt.Errorf("cluster: LSH bands and rows must be positive (got %d, %d)", lsh.Bands, lsh.Rows)
	}
	assign := make(metrics.Clustering, n)
	for i := range assign {
		assign[i] = -1
	}
	buckets := make([]map[uint64][]int, lsh.Bands)
	for b := range buckets {
		buckets[b] = make(map[uint64][]int)
	}
	var (
		repOrig  []int // rep id -> source index
		repLabel []int // rep id -> cluster label
		marks    []uint32
		gen      uint32
		candBuf  []int
	)
	next := 0
	for i := 0; i < n; i++ {
		placed := false
		if !src.Empty(i) {
			gen++
			if gen == 0 { // generation counter wrapped: invalidate stale marks
				for k := range marks {
					marks[k] = 0
				}
				gen = 1
			}
			candBuf = candBuf[:0]
			for b := 0; b < lsh.Bands; b++ {
				h := src.BandHash(i, b, lsh.Rows)
				for _, id := range buckets[b][h] {
					if marks[id] != gen {
						marks[id] = gen
						candBuf = append(candBuf, id)
					}
				}
			}
			for _, cand := range candBuf {
				if src.Similarity(i, repOrig[cand]) >= opt.Threshold {
					assign[i] = repLabel[cand]
					placed = true
					break
				}
			}
		}
		if !placed {
			id := len(repOrig)
			repOrig = append(repOrig, i)
			repLabel = append(repLabel, next)
			marks = append(marks, 0)
			for b := 0; b < lsh.Bands; b++ {
				h := src.BandHash(i, b, lsh.Rows)
				buckets[b][h] = append(buckets[b][h], id)
			}
			assign[i] = next
			next++
		}
	}
	return assign, nil
}

// HierarchicalFromSource is the end-to-end Algorithm 2 over any
// signature source: parallel tiled matrix build from the source's
// pairwise kernel, dendrogram, cut at θ. On a SliceSource it returns
// exactly HierarchicalFromSignatures' clustering.
func HierarchicalFromSource(src SigSource, link Linkage, theta float64) (metrics.Clustering, error) {
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("cluster: threshold must be in [0,1], got %v", theta)
	}
	m := BuildMatrixParallelFunc(src.Len(), 0, src.Similarity)
	d, err := Hierarchical(m, HierarchicalOptions{Linkage: link})
	if err != nil {
		return nil, err
	}
	return d.CutAt(theta), nil
}

// IncrementalSource is the online Algorithm 1 over a signature source:
// reads are labelled one dense ID at a time against representatives that
// stay *in* the source (the store arena) — representatives are
// remembered by index, never copied out. With a geometry it mirrors
// Incremental's banded fast path; with nil it scans representatives
// exactly.
type IncrementalSource struct {
	src     SigSource
	opt     GreedyOptions
	lsh     *LSHOptions
	buckets []map[uint64][]int
	marks   []uint32
	gen     uint32
	candBuf []int
	repIdx  []int // rep id -> source index
	repOf   []int // rep id -> cluster label (banded path)
	nLabels int
	nReads  int
}

// NewIncrementalSource starts an online clusterer over src. Pass a nil
// lshGeometry for exact representative scans.
func NewIncrementalSource(src SigSource, opt GreedyOptions, lshGeometry *LSHOptions) (*IncrementalSource, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	inc := &IncrementalSource{src: src, opt: opt}
	if lshGeometry != nil {
		if err := lshGeometry.Validate(src.NumHashes()); err != nil {
			return nil, err
		}
		g := *lshGeometry
		inc.lsh = &g
		inc.buckets = make([]map[uint64][]int, g.Bands)
		for b := range inc.buckets {
			inc.buckets[b] = make(map[uint64][]int)
		}
	}
	return inc, nil
}

// Add labels source element i and returns its cluster id. Elements must
// be added at most once; labels are stable for the clusterer's lifetime.
func (inc *IncrementalSource) Add(i int) (int, error) {
	if i < 0 || i >= inc.src.Len() {
		return 0, fmt.Errorf("cluster: source index %d out of range [0,%d)", i, inc.src.Len())
	}
	inc.nReads++
	if !inc.src.Empty(i) {
		if inc.lsh != nil {
			inc.gen++
			if inc.gen == 0 {
				for k := range inc.marks {
					inc.marks[k] = 0
				}
				inc.gen = 1
			}
			inc.candBuf = inc.candBuf[:0]
			for b := 0; b < inc.lsh.Bands; b++ {
				h := inc.src.BandHash(i, b, inc.lsh.Rows)
				for _, id := range inc.buckets[b][h] {
					if inc.marks[id] != inc.gen {
						inc.marks[id] = inc.gen
						inc.candBuf = append(inc.candBuf, id)
					}
				}
			}
			for _, cand := range inc.candBuf {
				if inc.src.Similarity(i, inc.repIdx[cand]) >= inc.opt.Threshold {
					return inc.repOf[cand], nil
				}
			}
		} else {
			for label, rep := range inc.repIdx {
				if inc.src.Similarity(i, rep) >= inc.opt.Threshold {
					return label, nil
				}
			}
		}
	}
	label := inc.nLabels
	inc.nLabels++
	if inc.lsh != nil {
		id := len(inc.repIdx)
		inc.marks = append(inc.marks, 0)
		for b := 0; b < inc.lsh.Bands; b++ {
			h := inc.src.BandHash(i, b, inc.lsh.Rows)
			inc.buckets[b][h] = append(inc.buckets[b][h], id)
		}
		inc.repOf = append(inc.repOf, label)
	}
	inc.repIdx = append(inc.repIdx, i)
	return label, nil
}

// NumClusters returns the number of clusters created so far.
func (inc *IncrementalSource) NumClusters() int { return inc.nLabels }

// NumReads returns the number of signatures processed.
func (inc *IncrementalSource) NumReads() int { return inc.nReads }
