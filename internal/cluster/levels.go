package cluster

import (
	"fmt"
	"sort"

	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// Multi-level output — the paper (§I) produces "clustering results at
// different hierarchical taxonomic levels ... by setting similarity
// threshold within a cluster". One dendrogram supports any number of
// cuts; this file provides the level sweep and per-cluster representative
// selection used by downstream workflows that analyze representatives
// instead of full clusters.

// Level is one flat clustering extracted from a dendrogram.
type Level struct {
	Theta    float64
	Labels   metrics.Clustering
	Clusters int
}

// CutLevels cuts the dendrogram at each threshold (any order) and returns
// the levels sorted by descending θ (finest first). Duplicate thresholds
// collapse.
func (d *Dendrogram) CutLevels(thetas []float64) []Level {
	uniq := map[float64]struct{}{}
	var ts []float64
	for _, t := range thetas {
		if _, dup := uniq[t]; !dup {
			uniq[t] = struct{}{}
			ts = append(ts, t)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ts)))
	levels := make([]Level, 0, len(ts))
	for _, t := range ts {
		labels := d.CutAt(t)
		levels = append(levels, Level{Theta: t, Labels: labels, Clusters: labels.NumClusters()})
	}
	return levels
}

// LevelsAreNested verifies the defining dendrogram property: every
// cluster at a coarser level is a union of clusters from the finer level.
// Levels must be ordered finest (highest θ) first.
func LevelsAreNested(levels []Level) bool {
	for i := 1; i < len(levels); i++ {
		fine, coarse := levels[i-1].Labels, levels[i].Labels
		if len(fine) != len(coarse) {
			return false
		}
		// Each fine cluster must map to exactly one coarse cluster.
		fineToCoarse := map[int]int{}
		for j := range fine {
			if c, ok := fineToCoarse[fine[j]]; ok {
				if c != coarse[j] {
					return false
				}
			} else {
				fineToCoarse[fine[j]] = coarse[j]
			}
		}
	}
	return true
}

// Representatives picks one medoid-like representative per cluster: the
// member with the highest summed similarity to its cluster mates (ties
// broken by lowest index). For singleton clusters the sole member is
// returned. Sequences enter as signatures so the choice uses the same
// estimator as clustering did.
func Representatives(labels metrics.Clustering, sigs []minhash.Signature, est minhash.Estimator) (map[int]int, error) {
	if len(labels) != len(sigs) {
		return nil, fmt.Errorf("cluster: %d labels for %d signatures", len(labels), len(sigs))
	}
	members := labels.Members()
	prep := minhash.PrepareAll(sigs)
	reps := make(map[int]int, len(members))
	for id, idx := range members {
		if len(idx) == 1 {
			reps[id] = idx[0]
			continue
		}
		best, bestScore := idx[0], -1.0
		for _, i := range idx {
			score := 0.0
			for _, j := range idx {
				if i != j {
					score += est.SimilarityPrepared(prep[i], prep[j])
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		reps[id] = best
	}
	return reps, nil
}
