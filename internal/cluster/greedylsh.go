package cluster

import (
	"fmt"
	"math"

	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// LSHOptions sizes the banding index used to accelerate greedy clustering.
type LSHOptions struct {
	// Bands × Rows must not exceed the signature length. A pair with
	// Jaccard similarity s collides in some band with probability
	// 1-(1-s^Rows)^Bands; pick geometry so the S-curve knee sits at the
	// clustering threshold (rule of thumb: (1/Bands)^(1/Rows) ≈ θ).
	Bands, Rows int
}

// Validate rejects unusable geometry.
func (o LSHOptions) Validate(sigLen int) error {
	if o.Bands < 1 || o.Rows < 1 {
		return fmt.Errorf("cluster: LSH bands and rows must be positive (got %d, %d)", o.Bands, o.Rows)
	}
	if o.Bands*o.Rows > sigLen {
		return fmt.Errorf("cluster: LSH needs %d signature slots but only %d available", o.Bands*o.Rows, sigLen)
	}
	return nil
}

// GeometryFor picks a banding whose collision S-curve knee approximates
// theta given n signature slots: rows grow until (1/bands)^(1/rows) ≥ θ.
func GeometryFor(n int, theta float64) LSHOptions {
	if n < 2 {
		return LSHOptions{Bands: 1, Rows: 1}
	}
	best := LSHOptions{Bands: n, Rows: 1}
	for rows := 1; rows <= n; rows++ {
		bands := n / rows
		if bands < 1 {
			break
		}
		knee := kneeOf(bands, rows)
		best = LSHOptions{Bands: bands, Rows: rows}
		if knee >= theta {
			return best
		}
	}
	return best
}

// kneeOf approximates the S-curve threshold (1/b)^(1/r).
func kneeOf(bands, rows int) float64 {
	return math.Pow(1/float64(bands), 1/float64(rows))
}

// GreedyLSH is Algorithm 1 with a banded LSH index over cluster
// representatives: instead of scanning every representative, a new read
// checks only representatives sharing at least one LSH band — the
// MC-LSH acceleration folded into MrMC-MinH as an optional fast path.
// Results can differ slightly from exact Greedy when a qualifying
// representative never collides (missed-candidate recall loss).
func GreedyLSH(sigs []minhash.Signature, opt GreedyOptions, lsh LSHOptions) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	sigLen := 0
	for _, s := range sigs {
		if len(s) > sigLen {
			sigLen = len(s)
		}
	}
	if len(sigs) > 0 {
		if err := lsh.Validate(sigLen); err != nil {
			return nil, err
		}
	}
	idx, err := minhash.NewBandIndex(lsh.Bands, lsh.Rows)
	if err != nil {
		return nil, err
	}
	prep := minhash.PrepareAll(sigs)
	assign := make(metrics.Clustering, len(sigs))
	for i := range assign {
		assign[i] = -1
	}
	repLabel := map[int]int{}
	var repOrig []int // band-index id -> original signature index
	var candBuf []int // reused across queries (CandidatesInto)
	next := 0
	for i, sig := range sigs {
		placed := false
		if !sig.Empty() {
			candBuf = idx.CandidatesInto(sig, candBuf[:0])
			for _, cand := range candBuf {
				if opt.Estimator.SimilarityPrepared(prep[i], prep[repOrig[cand]]) >= opt.Threshold {
					assign[i] = repLabel[cand]
					placed = true
					break
				}
			}
		}
		if !placed {
			id, err := idx.Add(sig)
			if err != nil {
				return nil, err
			}
			if id != len(repOrig) {
				return nil, fmt.Errorf("cluster: LSH index id drift")
			}
			repOrig = append(repOrig, i)
			repLabel[id] = next
			assign[i] = next
			next++
		}
	}
	return assign, nil
}
