package cluster

import (
	"testing"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

func TestIncrementalMatchesBatchGreedyExactly(t *testing.T) {
	sigs, _ := sketchGroups(t, 4, 12, 51)
	opt := GreedyOptions{Threshold: 0.5, Estimator: minhash.MatchedPositions}
	batch, err := Greedy(sigs, opt)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, sig := range sigs {
		label, err := inc.Add(sig)
		if err != nil {
			t.Fatal(err)
		}
		if label != batch[i] {
			t.Fatalf("read %d: incremental label %d != batch %d", i, label, batch[i])
		}
	}
	if inc.NumClusters() != batch.NumClusters() || inc.NumReads() != len(sigs) {
		t.Fatalf("counters %d/%d", inc.NumClusters(), inc.NumReads())
	}
}

func TestIncrementalLSHMatchesGreedyLSH(t *testing.T) {
	sigs, _ := sketchGroups(t, 3, 10, 52)
	opt := GreedyOptions{Threshold: 0.5, Estimator: minhash.MatchedPositions}
	geo := GeometryFor(len(sigs[0]), 0.5)
	batch, err := GreedyLSH(sigs, opt, geo)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(opt, &geo)
	if err != nil {
		t.Fatal(err)
	}
	for i, sig := range sigs {
		label, err := inc.Add(sig)
		if err != nil {
			t.Fatal(err)
		}
		if label != batch[i] {
			t.Fatalf("read %d: incremental-LSH label %d != batch %d", i, label, batch[i])
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncremental(GreedyOptions{Threshold: 2}, nil); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if _, err := NewIncremental(GreedyOptions{Threshold: 0.5}, &LSHOptions{Bands: 0, Rows: 1}); err == nil {
		t.Fatal("bad geometry accepted")
	}
	geo := LSHOptions{Bands: 4, Rows: 4}
	inc, err := NewIncremental(GreedyOptions{Threshold: 0.5}, &geo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Add(make(minhash.Signature, 8)); err == nil {
		t.Fatal("short signature accepted")
	}
}

func TestIncrementalEmptySignaturesAreSingletons(t *testing.T) {
	inc, err := NewIncremental(GreedyOptions{Threshold: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sk := minhash.MustSketcher(10, 5, 1)
	empty := sk.Sketch(nil)
	l1, _ := inc.Add(empty)
	l2, _ := inc.Add(empty.Clone())
	if l1 == l2 {
		t.Fatal("empty signatures merged")
	}
}
