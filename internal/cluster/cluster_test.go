package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// sketchGroups builds signatures for g well-separated groups of m near-
// identical members each: members of a group share ~95% of features while
// groups are disjoint.
func sketchGroups(t *testing.T, g, m int, seed int64) ([]minhash.Signature, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sk := minhash.MustSketcher(100, 10, seed)
	var sigs []minhash.Signature
	var truth []int
	for gi := 0; gi < g; gi++ {
		base := kmer.Set{}
		for len(base) < 400 {
			base.Add(rng.Uint64() % kmer.FeatureSpace(10))
		}
		elems := base.Sorted()
		for mi := 0; mi < m; mi++ {
			member := kmer.Set{}
			for _, v := range elems {
				if rng.Float64() < 0.97 {
					member.Add(v)
				}
			}
			sigs = append(sigs, sk.Sketch(member))
			truth = append(truth, gi)
		}
	}
	return sigs, truth
}

func agreesWithTruth(t *testing.T, c metrics.Clustering, truth []int, wantClusters int) {
	t.Helper()
	if got := c.NumClusters(); got != wantClusters {
		t.Fatalf("got %d clusters, want %d", got, wantClusters)
	}
	// Same truth group -> same cluster; different -> different.
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			same := c[i] == c[j]
			if (truth[i] == truth[j]) != same {
				t.Fatalf("pair (%d,%d): truth %v/%v but clusters %d/%d", i, j, truth[i], truth[j], c[i], c[j])
			}
		}
	}
}

func TestGreedyRecoversGroups(t *testing.T) {
	sigs, truth := sketchGroups(t, 4, 10, 1)
	c, err := Greedy(sigs, GreedyOptions{Threshold: 0.5, Estimator: minhash.MatchedPositions})
	if err != nil {
		t.Fatal(err)
	}
	agreesWithTruth(t, c, truth, 4)
}

func TestGreedySetOverlapEstimator(t *testing.T) {
	sigs, truth := sketchGroups(t, 3, 8, 2)
	c, err := Greedy(sigs, GreedyOptions{Threshold: 0.4, Estimator: minhash.SetOverlap})
	if err != nil {
		t.Fatal(err)
	}
	agreesWithTruth(t, c, truth, 3)
}

func TestGreedyThresholdOneSplitsNonIdentical(t *testing.T) {
	sigs, _ := sketchGroups(t, 1, 5, 3)
	c, err := Greedy(sigs, GreedyOptions{Threshold: 1, Estimator: minhash.MatchedPositions})
	if err != nil {
		t.Fatal(err)
	}
	// At θ=1 only exactly-identical signatures cluster; the 97%-noise
	// members should mostly split apart.
	if c.NumClusters() < 2 {
		t.Fatalf("θ=1 produced %d clusters", c.NumClusters())
	}
}

func TestGreedyThresholdZeroMergesAll(t *testing.T) {
	sigs, _ := sketchGroups(t, 4, 5, 4)
	c, err := Greedy(sigs, GreedyOptions{Threshold: 0, Estimator: minhash.MatchedPositions})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 1 {
		t.Fatalf("θ=0 produced %d clusters, want 1", c.NumClusters())
	}
}

func TestGreedyLowerThresholdFewerClusters(t *testing.T) {
	sigs, _ := sketchGroups(t, 5, 6, 5)
	prev := -1
	for _, theta := range []float64{0.9, 0.5, 0.1} {
		c, err := Greedy(sigs, GreedyOptions{Threshold: theta, Estimator: minhash.MatchedPositions})
		if err != nil {
			t.Fatal(err)
		}
		n := c.NumClusters()
		if prev >= 0 && n > prev {
			t.Fatalf("θ=%v gave %d clusters, more than %d at higher θ", theta, n, prev)
		}
		prev = n
	}
}

func TestGreedyEmptySignaturesSingletons(t *testing.T) {
	sk := minhash.MustSketcher(20, 5, 1)
	sigs := []minhash.Signature{
		sk.Sketch(kmer.Set{}),
		sk.Sketch(kmer.Set{}),
		sk.Sketch(kmer.FromSlice([]uint64{1, 2, 3})),
	}
	c, err := Greedy(sigs, GreedyOptions{Threshold: 0.0, Estimator: minhash.MatchedPositions})
	if err != nil {
		t.Fatal(err)
	}
	// Empty signatures have similarity 0 to everything; at θ=0 even 0
	// passes (>=), but empty reps skip the sweep, so each empty read is
	// alone unless swept by a non-empty rep — which also fails (sim 0 >= 0
	// is true)... the non-empty rep comes last, so the empties are reps.
	if c[0] == c[2] && c[1] == c[2] {
		t.Fatalf("clusters %v", c)
	}
	if c.NumClusters() < 2 {
		t.Fatalf("clusters %v", c)
	}
}

func TestGreedyValidation(t *testing.T) {
	if _, err := Greedy(nil, GreedyOptions{Threshold: -0.1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := Greedy(nil, GreedyOptions{Threshold: 1.1}); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
}

func TestGreedyEmptyInput(t *testing.T) {
	c, err := Greedy(nil, GreedyOptions{Threshold: 0.5})
	if err != nil || len(c) != 0 {
		t.Fatalf("c=%v err=%v", c, err)
	}
}

func TestGreedyAllAssigned(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sk := minhash.MustSketcher(10, 5, seed)
		sigs := make([]minhash.Signature, 20)
		for i := range sigs {
			set := kmer.Set{}
			for k := 0; k < rng.Intn(30); k++ {
				set.Add(rng.Uint64() % kmer.FeatureSpace(5))
			}
			sigs[i] = sk.Sketch(set)
		}
		c, err := Greedy(sigs, GreedyOptions{Threshold: 0.5, Estimator: minhash.MatchedPositions})
		if err != nil {
			return false
		}
		for _, l := range c {
			if l < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyOrdered(t *testing.T) {
	sigs, truth := sketchGroups(t, 3, 6, 7)
	order := make([]int, len(sigs))
	for i := range order {
		order[i] = len(sigs) - 1 - i // reverse order
	}
	c, err := GreedyOrdered(sigs, order, GreedyOptions{Threshold: 0.5, Estimator: minhash.MatchedPositions})
	if err != nil {
		t.Fatal(err)
	}
	agreesWithTruth(t, c, truth, 3)
}

func TestGreedyOrderedValidation(t *testing.T) {
	sigs, _ := sketchGroups(t, 1, 3, 8)
	if _, err := GreedyOrdered(sigs, []int{0, 1}, GreedyOptions{Threshold: 0.5}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := GreedyOrdered(sigs, []int{0, 0, 1}, GreedyOptions{Threshold: 0.5}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := GreedyOrdered(sigs, []int{0, 1, 9}, GreedyOptions{Threshold: 0.5}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := MustMatrix(3)
	if m.N() != 3 {
		t.Fatal("N wrong")
	}
	m.Set(0, 1, 0.5)
	if m.Get(0, 1) != 0.5 || m.Get(1, 0) != 0.5 {
		t.Fatal("Set/Get not symmetric")
	}
	if m.Get(2, 2) != 1 {
		t.Fatal("diagonal not 1")
	}
	m.Set(1, 1, 0.3) // ignored
	if m.Get(1, 1) != 1 {
		t.Fatal("diagonal overwritten")
	}
	if err := m.SetRow(0, []float64{1, 0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if m.Get(0, 2) != 0.75 {
		t.Fatal("SetRow failed")
	}
	if m.Get(2, 0) != 0.75 || m.Get(1, 0) != 0.25 {
		t.Fatal("SetRow did not write the mirror triangle")
	}
	if err := m.SetRow(0, []float64{1}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := NewMatrix(-1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestMatrixSymmetrize(t *testing.T) {
	m := MustMatrix(2)
	m.data[0*2+1] = 0.9 // write one side directly
	m.Symmetrize()
	if m.Get(1, 0) != m.Get(0, 1) || m.Get(0, 1) < 0.89 {
		t.Fatal("Symmetrize failed")
	}
}

func TestParseLinkage(t *testing.T) {
	for s, want := range map[string]Linkage{"single": Single, "average": Average, "complete": Complete} {
		got, err := ParseLinkage(s)
		if err != nil || got != want {
			t.Fatalf("ParseLinkage(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q", got.String())
		}
	}
	if _, err := ParseLinkage("median"); err == nil {
		t.Fatal("bad linkage accepted")
	}
	if Linkage(9).String() != "unknown" {
		t.Fatal("unknown name")
	}
}

// knownMatrix builds the textbook 5-leaf example where hierarchical
// results are hand-checkable: two tight pairs plus an outlier.
func knownMatrix() *Matrix {
	m := MustMatrix(5)
	// leaves 0,1 similar (0.9); 2,3 similar (0.8); cross pairs 0.3;
	// leaf 4 dissimilar to everything (0.1).
	m.Set(0, 1, 0.9)
	m.Set(2, 3, 0.8)
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		m.Set(p[0], p[1], 0.3)
	}
	for i := 0; i < 4; i++ {
		m.Set(i, 4, 0.1)
	}
	return m
}

func TestHierarchicalKnownDendrogram(t *testing.T) {
	for _, link := range []Linkage{Single, Average, Complete} {
		d, err := Hierarchical(knownMatrix(), HierarchicalOptions{Linkage: link})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Merges) != 4 {
			t.Fatalf("%v: %d merges, want 4", link, len(d.Merges))
		}
		// Cut at 0.7: {0,1}, {2,3}, {4}.
		c := d.CutAt(0.7)
		if c.NumClusters() != 3 || c[0] != c[1] || c[2] != c[3] || c[0] == c[2] || c[4] == c[0] || c[4] == c[2] {
			t.Fatalf("%v: cut at 0.7 = %v", link, c)
		}
		// Cut at 0.05: everything merges.
		if all := d.CutAt(0.05); all.NumClusters() != 1 {
			t.Fatalf("%v: cut at 0.05 = %v", link, all)
		}
		// Cut above 1: all singletons.
		if none := d.CutAt(1.01); none.NumClusters() != 5 {
			t.Fatalf("%v: cut at 1.01 = %v", link, none)
		}
	}
}

func TestHierarchicalLinkageDifference(t *testing.T) {
	// Chain topology: 0-1 (0.9), 1-2 (0.9), 0-2 (0.2).
	// Single linkage at θ=0.5 chains all three; complete linkage keeps
	// the far pair apart at a 3-way merge level near min(0.9, 0.2).
	build := func() *Matrix {
		m := MustMatrix(3)
		m.Set(0, 1, 0.9)
		m.Set(1, 2, 0.9)
		m.Set(0, 2, 0.2)
		return m
	}
	dSingle, err := Hierarchical(build(), HierarchicalOptions{Linkage: Single})
	if err != nil {
		t.Fatal(err)
	}
	if c := dSingle.CutAt(0.5); c.NumClusters() != 1 {
		t.Fatalf("single cut: %v", c)
	}
	dComplete, err := Hierarchical(build(), HierarchicalOptions{Linkage: Complete})
	if err != nil {
		t.Fatal(err)
	}
	if c := dComplete.CutAt(0.5); c.NumClusters() != 2 {
		t.Fatalf("complete cut: %v", c)
	}
}

func TestHierarchicalTrivialSizes(t *testing.T) {
	d, err := Hierarchical(MustMatrix(0), HierarchicalOptions{Linkage: Average})
	if err != nil || len(d.Merges) != 0 {
		t.Fatalf("size 0: %+v, %v", d, err)
	}
	d, err = Hierarchical(MustMatrix(1), HierarchicalOptions{Linkage: Average})
	if err != nil || len(d.Merges) != 0 {
		t.Fatalf("size 1: %+v, %v", d, err)
	}
	c := d.CutAt(0.5)
	if len(c) != 1 || c[0] != 0 {
		t.Fatalf("size-1 cut %v", c)
	}
}

func TestHierarchicalInvalidLinkage(t *testing.T) {
	if _, err := Hierarchical(MustMatrix(2), HierarchicalOptions{Linkage: Linkage(9)}); err == nil {
		t.Fatal("bad linkage accepted")
	}
}

func TestHierarchicalFromSignaturesRecoversGroups(t *testing.T) {
	sigs, truth := sketchGroups(t, 4, 8, 11)
	for _, link := range []Linkage{Single, Average, Complete} {
		c, err := HierarchicalFromSignatures(sigs, minhash.MatchedPositions, link, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		agreesWithTruth(t, c, truth, 4)
	}
}

func TestHierarchicalThresholdValidation(t *testing.T) {
	if _, err := HierarchicalFromSignatures(nil, minhash.MatchedPositions, Average, 1.5); err == nil {
		t.Fatal("bad threshold accepted")
	}
}

func TestHeightsSortedDescending(t *testing.T) {
	d, err := Hierarchical(knownMatrix(), HierarchicalOptions{Linkage: Average})
	if err != nil {
		t.Fatal(err)
	}
	hs := d.Heights()
	for i := 1; i < len(hs); i++ {
		if hs[i] > hs[i-1] {
			t.Fatalf("heights not descending: %v", hs)
		}
	}
}

// TestHierarchicalMatchesNaive cross-checks NN-chain against a brute-force
// O(n³) implementation on random matrices.
func TestHierarchicalMatchesNaive(t *testing.T) {
	for _, link := range []Linkage{Single, Average, Complete} {
		for trial := 0; trial < 10; trial++ {
			rng := rand.New(rand.NewSource(int64(trial + 100)))
			n := 3 + rng.Intn(12)
			build := func() *Matrix {
				m := MustMatrix(n)
				r := rand.New(rand.NewSource(int64(trial + 100)))
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						m.Set(i, j, r.Float64())
					}
				}
				return m
			}
			d, err := Hierarchical(build(), HierarchicalOptions{Linkage: link})
			if err != nil {
				t.Fatal(err)
			}
			naive := naiveHierarchical(build(), link)
			for _, theta := range []float64{0.2, 0.5, 0.8} {
				got := d.CutAt(theta)
				want := naive.CutAt(theta)
				if !sameClustering(got, want) {
					t.Fatalf("link %v trial %d θ=%v: NN-chain %v vs naive %v", link, trial, theta, got, want)
				}
			}
		}
	}
}

// naiveHierarchical merges the globally most similar pair each round.
func naiveHierarchical(m *Matrix, link Linkage) *Dendrogram {
	n := m.N()
	d := &Dendrogram{N: n}
	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i], size[i] = true, 1
	}
	for rem := n; rem > 1; rem-- {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if s := m.Get(i, j); s > best {
					best, bi, bj = s, i, j
				}
			}
		}
		d.Merges = append(d.Merges, Merge{A: bi, B: bj, Similarity: best})
		mergeInto(m, active, size, bi, bj, link)
	}
	return d
}

// sameClustering compares two clusterings up to label renaming.
func sameClustering(a, b metrics.Clustering) bool {
	if len(a) != len(b) {
		return false
	}
	fwd, rev := map[int]int{}, map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if m, ok := rev[b[i]]; ok {
			if m != a[i] {
				return false
			}
		} else {
			rev[b[i]] = a[i]
		}
	}
	return true
}

func TestSimilarityMatrixValues(t *testing.T) {
	sk := minhash.MustSketcher(50, 5, 1)
	a := sk.Sketch(kmer.FromSlice([]uint64{1, 2, 3, 4}))
	b := sk.Sketch(kmer.FromSlice([]uint64{1, 2, 3, 4}))
	cst := sk.Sketch(kmer.FromSlice([]uint64{900, 901, 902}))
	m := SimilarityMatrix([]minhash.Signature{a, b, cst}, minhash.MatchedPositions)
	if m.Get(0, 1) != 1 {
		t.Fatalf("identical sets similarity %v", m.Get(0, 1))
	}
	if m.Get(0, 2) > 0.2 {
		t.Fatalf("disjoint sets similarity %v", m.Get(0, 2))
	}
}

func BenchmarkGreedy1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sk := minhash.MustSketcher(100, 10, 1)
	sigs := make([]minhash.Signature, 1000)
	for i := range sigs {
		set := kmer.Set{}
		for len(set) < 100 {
			set.Add(rng.Uint64() % kmer.FeatureSpace(10))
		}
		sigs[i] = sk.Sketch(set)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(sigs, GreedyOptions{Threshold: 0.9, Estimator: minhash.MatchedPositions}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchical500(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := MustMatrix(n)
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				m.Set(x, y, rng.Float64())
			}
		}
		b.StartTimer()
		if _, err := Hierarchical(m, HierarchicalOptions{Linkage: Average}); err != nil {
			b.Fatal(err)
		}
	}
}
