package minhash

import (
	"math"
	"math/rand"
	"testing"
)

// boundaryLengths returns signature lengths that exercise the cross-word
// packing cases for width b: slots ending exactly on a 64-bit word
// boundary, one slot past it (the spill path in CompactInto), and a few
// fixed lengths including the paper's n=100.
func boundaryLengths(b int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(n int) {
		if n >= 1 && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, words := range []int{1, 2, 3} {
		exact := words * 64 / b // last slot ends at or before the boundary
		add(exact - 1)
		add(exact)
		add(exact + 1)
	}
	add(1)
	add(100)
	return out
}

// TestCompactSlotRoundTripEveryB packs random signatures for every b in
// [1,16] at word-boundary-straddling lengths and checks each slot reads
// back the low b bits of its source value — including slots that span
// two words.
func TestCompactSlotRoundTripEveryB(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for b := 1; b <= 16; b++ {
		mask := uint64(1)<<b - 1
		for _, n := range boundaryLengths(b) {
			sig := make(Signature, n)
			for i := range sig {
				sig[i] = rng.Uint64()
			}
			c, err := Compact(sig, b)
			if err != nil {
				t.Fatalf("b=%d n=%d: %v", b, n, err)
			}
			if c.N != n || c.B != b {
				t.Fatalf("b=%d n=%d: geometry %d/%d", b, n, c.N, c.B)
			}
			if want := PackedWords(n, b); len(c.Words) != want {
				t.Fatalf("b=%d n=%d: %d words, want %d", b, n, len(c.Words), want)
			}
			for i, v := range sig {
				if got := c.slot(i); got != v&mask {
					t.Fatalf("b=%d n=%d slot %d = %x, want %x", b, n, i, got, v&mask)
				}
			}
		}
	}
}

// TestCompactIntoMatchesCompact pins the zero-copy CompactInto/Borrow pair
// to the allocating Compact for every width at boundary lengths.
func TestCompactIntoMatchesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for b := 1; b <= 16; b++ {
		for _, n := range boundaryLengths(b) {
			sig := make(Signature, n)
			for i := range sig {
				sig[i] = rng.Uint64()
			}
			want, err := Compact(sig, b)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]uint64, PackedWords(n, b))
			CompactInto(dst, sig, b)
			got := Borrow(b, n, dst, sig.Empty())
			if got.N != want.N || got.B != want.B || got.Empty() != want.Empty() {
				t.Fatalf("b=%d n=%d: geometry mismatch", b, n)
			}
			for w := range dst {
				if dst[w] != want.Words[w] {
					t.Fatalf("b=%d n=%d word %d: %x vs %x", b, n, w, dst[w], want.Words[w])
				}
			}
		}
	}
}

// TestMatchCountSWARMatchesSlotLoop cross-checks the word-parallel match
// counter (power-of-two b) and the slot-loop fallback against a direct
// per-slot reference for every b in [1,16].
func TestMatchCountSWARMatchesSlotLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for b := 1; b <= 16; b++ {
		for _, n := range boundaryLengths(b) {
			x := make(Signature, n)
			y := make(Signature, n)
			for i := range x {
				x[i] = rng.Uint64()
				// Force a healthy fraction of matching slots so both
				// branches of the counter are exercised.
				if rng.Intn(2) == 0 {
					y[i] = x[i]
				} else {
					y[i] = rng.Uint64()
				}
			}
			cx, _ := Compact(x, b)
			cy, _ := Compact(y, b)
			ref := 0
			for i := 0; i < n; i++ {
				if cx.slot(i) == cy.slot(i) {
					ref++
				}
			}
			if got := cx.MatchCount(cy); got != ref {
				t.Fatalf("b=%d n=%d: MatchCount %d, want %d", b, n, got, ref)
			}
		}
	}
}

// TestSimilarityFastMatchesSimilarity pins the error-free fast path to the
// validating Similarity for every width.
func TestSimilarityFastMatchesSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for b := 1; b <= 16; b++ {
		n := 100
		x := make(Signature, n)
		y := make(Signature, n)
		for i := range x {
			x[i] = rng.Uint64()
			if rng.Intn(3) == 0 {
				y[i] = x[i]
			} else {
				y[i] = rng.Uint64()
			}
		}
		cx, _ := Compact(x, b)
		cy, _ := Compact(y, b)
		want, err := cx.Similarity(cy)
		if err != nil {
			t.Fatal(err)
		}
		if got := cx.SimilarityFast(cy); got != want {
			t.Fatalf("b=%d: SimilarityFast %v vs Similarity %v", b, got, want)
		}
	}
}

// TestBBitEstimatorConvergesEveryB sweeps every b in [1,16] (covering the
// SWAR widths and the slot-loop fallback alike) and checks the
// collision-corrected estimate (match - 2^-b)/(1 - 2^-b) converges to the
// exact signature Jaccard as computed on the unpacked signatures.
func TestBBitEstimatorConvergesEveryB(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const n = 4096 // large signature to shrink the b-bit sampling error
	for _, wantJ := range []float64{0.25, 0.8} {
		x := make(Signature, n)
		y := make(Signature, n)
		for i := range x {
			x[i] = rng.Uint64() % (1 << 61)
			if rng.Float64() < wantJ {
				y[i] = x[i]
			} else {
				y[i] = rng.Uint64() % (1 << 61)
			}
		}
		exact := MatchedPositions.Similarity(x, y)
		for b := 1; b <= 16; b++ {
			cx, _ := Compact(x, b)
			cy, _ := Compact(y, b)
			got, err := cx.Similarity(cy)
			if err != nil {
				t.Fatal(err)
			}
			tol := 0.05
			if b == 1 {
				tol = 0.08 // highest-variance setting
			}
			if math.Abs(got-exact) > tol {
				t.Errorf("b=%d: estimate %.4f vs exact %.4f", b, got, exact)
			}
		}
	}
}
