package minhash

import "sort"

// Estimator selects how Jaccard similarity is estimated from two signatures.
type Estimator int

const (
	// MatchedPositions is the classic minwise estimator: the fraction of
	// signature slots where the two minimum values agree. Each slot is an
	// independent Bernoulli trial with success probability equal to the
	// true Jaccard similarity (Eq. 3).
	MatchedPositions Estimator = iota
	// SetOverlap follows the paper's Algorithm 1 line 9: treat the two
	// signatures as *sets* of minwise values and return
	// |minHash(I_s1) ∩ minHash(I_s2)| / |minHash(I_s1) ∪ minHash(I_s2)|.
	SetOverlap
)

// String names the estimator.
func (e Estimator) String() string {
	switch e {
	case MatchedPositions:
		return "matched-positions"
	case SetOverlap:
		return "set-overlap"
	default:
		return "unknown"
	}
}

// Similarity estimates the Jaccard similarity of the underlying feature
// sets from two signatures using estimator e. Signatures must have equal
// length. Empty signatures have similarity 0 to everything (including each
// other) — an empty read carries no evidence of relatedness.
func (e Estimator) Similarity(a, b Signature) float64 {
	if a.Empty() || b.Empty() {
		return 0
	}
	switch e {
	case SetOverlap:
		return setOverlap(a, b)
	default:
		return matchedPositions(a, b)
	}
}

// matchedPositions counts agreeing slots.
func matchedPositions(a, b Signature) float64 {
	if len(a) != len(b) {
		panic("minhash: signature length mismatch")
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// setOverlap computes Jaccard over the signatures viewed as value sets.
// It allocates two sorted copies per call; hot paths should Prepare each
// signature once and use SimilarityPrepared instead.
func setOverlap(a, b Signature) float64 {
	return setOverlapSorted(distinctSorted(a), distinctSorted(b))
}

// distinctSorted returns the sorted distinct values of a signature.
func distinctSorted(sig Signature) []uint64 {
	vals := make([]uint64, len(sig))
	copy(vals, sig)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}
