// Package minhash implements minwise hashing over k-mer feature sets.
//
// Following the paper (and Broder et al.), random permutations are
// approximated by a family of universal hash functions
//
//	h_i(x) = ((a_i*x + b_i) mod p) mod m,   i = 1..n     (Eq. 5)
//
// where p is a prime larger than the feature-space size m and a_i, b_i are
// drawn uniformly from {0,..,p-1} (a_i nonzero). A sequence's signature is
// the vector of minimum hash values under each h_i (Eq. 4/6); the
// probability that two sets share a minimum equals their Jaccard similarity
// (Eq. 3).
package minhash

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// MersennePrime61 is 2^61 - 1, the modulus used for universal hashing.
// It exceeds every 2-bit-packed k-mer space (4^k for k <= 30) and permits
// overflow-free modular arithmetic on 64-bit words via 128-bit products.
const MersennePrime61 = (1 << 61) - 1

// HashFamily is a family of n universal hash functions sharing a modulus p
// and range m.
type HashFamily struct {
	A []uint64 // multipliers, 1..p-1
	B []uint64 // offsets, 0..p-1
	P uint64   // prime modulus
	M uint64   // output range (size of feature space)
}

// NewHashFamily draws n universal hash functions for a feature space of
// size m using the given seed. Determinism: the same (n, m, seed) always
// yields the same family.
func NewHashFamily(n int, m uint64, seed int64) (*HashFamily, error) {
	if n < 1 {
		return nil, fmt.Errorf("minhash: need at least one hash function, got %d", n)
	}
	if m == 0 {
		return nil, fmt.Errorf("minhash: feature space size must be positive")
	}
	if m >= MersennePrime61 {
		return nil, fmt.Errorf("minhash: feature space %d exceeds prime modulus", m)
	}
	rng := rand.New(rand.NewSource(seed))
	f := &HashFamily{
		A: make([]uint64, n),
		B: make([]uint64, n),
		P: MersennePrime61,
		M: m,
	}
	for i := 0; i < n; i++ {
		// a uniform in [1, p-1], b uniform in [0, p-1]
		f.A[i] = 1 + uint64(rng.Int63n(MersennePrime61-1))
		f.B[i] = uint64(rng.Int63n(MersennePrime61))
	}
	return f, nil
}

// MustHashFamily is NewHashFamily panicking on error.
func MustHashFamily(n int, m uint64, seed int64) *HashFamily {
	f, err := NewHashFamily(n, m, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// N returns the number of hash functions in the family.
func (f *HashFamily) N() int { return len(f.A) }

// Hash evaluates the i-th hash function on x.
func (f *HashFamily) Hash(i int, x uint64) uint64 {
	return mulAddMod61(f.A[i], x, f.B[i]) % f.M
}

// mulAddMod61 computes (a*x + b) mod (2^61-1) without overflow using the
// Mersenne-prime folding trick on the 128-bit product.
func mulAddMod61(a, x, b uint64) uint64 {
	hi, lo := bits.Mul64(a, x)
	// a*x = hi*2^64 + lo. With p = 2^61-1, 2^61 ≡ 1 (mod p), so fold the
	// 128-bit value into 61-bit chunks.
	// value = (hi << 3 | lo >> 61) * 2^61 + (lo & p)
	upper := hi<<3 | lo>>61
	res := (lo & MersennePrime61) + upper%MersennePrime61
	if res >= MersennePrime61 {
		res -= MersennePrime61
	}
	res += b
	if res >= MersennePrime61 {
		res -= MersennePrime61
	}
	return res
}
