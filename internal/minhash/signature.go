package minhash

import (
	"math"

	"github.com/metagenomics/mrmcminh/internal/kmer"
)

// EmptyMin is the signature slot value for a feature set with no elements
// (e.g. a read shorter than k): no hash value was observed.
const EmptyMin = math.MaxUint64

// Signature is the fixed-size sketch of one sequence: the minimum hash
// value under each function of a HashFamily (Eq. 4).
type Signature []uint64

// Sketcher computes signatures from k-mer feature sets.
type Sketcher struct {
	Family *HashFamily
}

// NewSketcher returns a Sketcher drawing n hash functions for k-mers of
// size k with the given seed.
func NewSketcher(n, k int, seed int64) (*Sketcher, error) {
	f, err := NewHashFamily(n, kmer.FeatureSpace(k), seed)
	if err != nil {
		return nil, err
	}
	return &Sketcher{Family: f}, nil
}

// MustSketcher is NewSketcher panicking on error.
func MustSketcher(n, k int, seed int64) *Sketcher {
	s, err := NewSketcher(n, k, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the signature length.
func (s *Sketcher) N() int { return s.Family.N() }

// Sketch computes the minwise signature of a feature set. An empty set
// yields a signature of EmptyMin slots.
func (s *Sketcher) Sketch(set kmer.Set) Signature {
	sig := make(Signature, s.Family.N())
	for i := range sig {
		sig[i] = EmptyMin
	}
	for x := range set {
		s.observe(sig, x)
	}
	return sig
}

// SketchSlice computes the signature of a k-mer occurrence slice (duplicate
// occurrences do not change the minimum, so Sketch(Set) and
// SketchSlice(Slice) of the same sequence agree).
func (s *Sketcher) SketchSlice(kms []uint64) Signature {
	sig := make(Signature, s.Family.N())
	for i := range sig {
		sig[i] = EmptyMin
	}
	for _, x := range kms {
		s.observe(sig, x)
	}
	return sig
}

// observe folds one feature into a partial signature.
func (s *Sketcher) observe(sig Signature, x uint64) {
	f := s.Family
	for i := range sig {
		if h := mulAddMod61(f.A[i], x, f.B[i]) % f.M; h < sig[i] {
			sig[i] = h
		}
	}
}

// Empty reports whether the signature was computed from an empty feature set.
func (sig Signature) Empty() bool {
	return len(sig) == 0 || sig[0] == EmptyMin
}

// Equal reports exact slot-wise equality of two signatures.
func (sig Signature) Equal(other Signature) bool {
	if len(sig) != len(other) {
		return false
	}
	for i := range sig {
		if sig[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the signature.
func (sig Signature) Clone() Signature {
	out := make(Signature, len(sig))
	copy(out, sig)
	return out
}
