package minhash

import (
	"math"

	"github.com/metagenomics/mrmcminh/internal/kmer"
)

// EmptyMin is the signature slot value for a feature set with no elements
// (e.g. a read shorter than k): no hash value was observed.
const EmptyMin = math.MaxUint64

// Signature is the fixed-size sketch of one sequence: the minimum hash
// value under each function of a HashFamily (Eq. 4).
type Signature []uint64

// Sketcher computes signatures from k-mer feature sets.
type Sketcher struct {
	Family *HashFamily
}

// NewSketcher returns a Sketcher drawing n hash functions for k-mers of
// size k with the given seed.
func NewSketcher(n, k int, seed int64) (*Sketcher, error) {
	f, err := NewHashFamily(n, kmer.FeatureSpace(k), seed)
	if err != nil {
		return nil, err
	}
	return &Sketcher{Family: f}, nil
}

// MustSketcher is NewSketcher panicking on error.
func MustSketcher(n, k int, seed int64) *Sketcher {
	s, err := NewSketcher(n, k, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the signature length.
func (s *Sketcher) N() int { return s.Family.N() }

// Sketch computes the minwise signature of a feature set. An empty set
// yields a signature of EmptyMin slots.
func (s *Sketcher) Sketch(set kmer.Set) Signature {
	sig := make(Signature, s.Family.N())
	for i := range sig {
		sig[i] = EmptyMin
	}
	for x := range set {
		s.observe(sig, x)
	}
	return sig
}

// SketchSlice computes the signature of a k-mer occurrence slice (duplicate
// occurrences do not change the minimum, so Sketch(Set) and
// SketchSlice(Slice) of the same sequence agree).
func (s *Sketcher) SketchSlice(kms []uint64) Signature {
	return s.SketchInto(nil, kms)
}

// SketchInto computes the signature of a k-mer occurrence slice into dst,
// reusing dst's backing array when it has capacity (pass nil to
// allocate). It returns exactly the same signature as SketchSlice but
// runs the hash lanes four at a time over the whole feature slice,
// keeping the running minima in registers instead of re-loading the
// signature slot on every feature — the batched kernel behind the
// pipeline's sketch map tasks.
func (s *Sketcher) SketchInto(dst Signature, kms []uint64) Signature {
	f := s.Family
	n := f.N()
	if cap(dst) < n {
		dst = make(Signature, n)
	}
	dst = dst[:n]
	if len(kms) == 0 {
		for i := range dst {
			dst[i] = EmptyMin
		}
		return dst
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		a0, a1, a2, a3 := f.A[i], f.A[i+1], f.A[i+2], f.A[i+3]
		b0, b1, b2, b3 := f.B[i], f.B[i+1], f.B[i+2], f.B[i+3]
		m0, m1, m2, m3 := uint64(EmptyMin), uint64(EmptyMin), uint64(EmptyMin), uint64(EmptyMin)
		for _, x := range kms {
			if h := mulAddMod61(a0, x, b0) % f.M; h < m0 {
				m0 = h
			}
			if h := mulAddMod61(a1, x, b1) % f.M; h < m1 {
				m1 = h
			}
			if h := mulAddMod61(a2, x, b2) % f.M; h < m2 {
				m2 = h
			}
			if h := mulAddMod61(a3, x, b3) % f.M; h < m3 {
				m3 = h
			}
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = m0, m1, m2, m3
	}
	for ; i < n; i++ {
		a, b := f.A[i], f.B[i]
		m := uint64(EmptyMin)
		for _, x := range kms {
			if h := mulAddMod61(a, x, b) % f.M; h < m {
				m = h
			}
		}
		dst[i] = m
	}
	return dst
}

// observe folds one feature into a partial signature.
func (s *Sketcher) observe(sig Signature, x uint64) {
	f := s.Family
	for i := range sig {
		if h := mulAddMod61(f.A[i], x, f.B[i]) % f.M; h < sig[i] {
			sig[i] = h
		}
	}
}

// Empty reports whether the signature was computed from an empty feature set.
func (sig Signature) Empty() bool {
	return len(sig) == 0 || sig[0] == EmptyMin
}

// Equal reports exact slot-wise equality of two signatures.
func (sig Signature) Equal(other Signature) bool {
	if len(sig) != len(other) {
		return false
	}
	for i := range sig {
		if sig[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the signature.
func (sig Signature) Clone() Signature {
	out := make(Signature, len(sig))
	copy(out, sig)
	return out
}
