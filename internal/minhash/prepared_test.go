package minhash

import (
	"math/rand"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/kmer"
)

// randomSignature draws a length-n signature whose values cluster in a
// small range so duplicates (within and across signatures) are common —
// the regime where set-overlap and matched-positions disagree and edge
// cases live.
func randomSignature(rng *rand.Rand, n int) Signature {
	sig := make(Signature, n)
	for i := range sig {
		sig[i] = uint64(rng.Intn(50))
	}
	return sig
}

// TestSimilarityPreparedEquivalence is the property test behind the
// kernel swap: for random signatures (shared values, empty slices,
// EmptyMin slots) both estimators must return bit-identical floats on
// the prepared and legacy paths.
func TestSimilarityPreparedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ests := []Estimator{MatchedPositions, SetOverlap}
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(20)
		a := randomSignature(rng, n)
		b := randomSignature(rng, n)
		// Sometimes force empty feature sets or other edge shapes.
		switch trial % 5 {
		case 1:
			for i := range a {
				a[i] = EmptyMin
			}
		case 2:
			copy(b, a) // identical signatures
		case 3:
			if n > 0 {
				b[0] = EmptyMin // Empty() true even with trailing values
			}
		}
		pa, pb := Prepare(a), Prepare(b)
		for _, est := range ests {
			want := est.Similarity(a, b)
			got := est.SimilarityPrepared(pa, pb)
			if got != want {
				t.Fatalf("trial %d est %v: prepared %v != legacy %v (a=%v b=%v)", trial, est, got, want, a, b)
			}
			if sym := est.SimilarityPrepared(pb, pa); sym != got {
				t.Fatalf("trial %d est %v: not symmetric (%v vs %v)", trial, est, got, sym)
			}
		}
	}
}

func TestSimilarityPreparedEmpty(t *testing.T) {
	sk := MustSketcher(10, 5, 1)
	full := Prepare(sk.Sketch(kmer.FromSlice([]uint64{1, 2, 3})))
	empty := Prepare(sk.Sketch(kmer.Set{}))
	nilSig := Prepare(nil)
	for _, est := range []Estimator{MatchedPositions, SetOverlap} {
		if got := est.SimilarityPrepared(empty, empty); got != 0 {
			t.Fatalf("empty-empty similarity %v", got)
		}
		if got := est.SimilarityPrepared(empty, full); got != 0 {
			t.Fatalf("empty-full similarity %v", got)
		}
		if got := est.SimilarityPrepared(nilSig, full); got != 0 {
			t.Fatalf("nil-full similarity %v", got)
		}
	}
	if !empty.Empty() || !nilSig.Empty() || full.Empty() {
		t.Fatal("Prepared.Empty disagrees with Signature.Empty")
	}
}

// TestSketchIntoMatchesSketch pins the unrolled slice kernel to the
// legacy map path: same features (with duplicates), same signature, for
// lane counts around the 4-way unroll boundary and with dst reuse.
func TestSketchIntoMatchesSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 100} {
		sk := MustSketcher(n, 5, 3)
		var dst Signature
		for trial := 0; trial < 20; trial++ {
			kms := make([]uint64, rng.Intn(200))
			for i := range kms {
				kms[i] = rng.Uint64() % kmer.FeatureSpace(5)
			}
			if len(kms) > 1 {
				kms[0] = kms[1] // guarantee a duplicate occurrence
			}
			want := sk.Sketch(kmer.FromSlice(kms))
			got := sk.SketchSlice(kms)
			if !got.Equal(want) {
				t.Fatalf("n=%d: SketchSlice != Sketch", n)
			}
			dst = sk.SketchInto(dst, kms) // reuses backing array after trial 0
			if !dst.Equal(want) {
				t.Fatalf("n=%d: SketchInto != Sketch", n)
			}
		}
		empty := sk.SketchInto(nil, nil)
		if !empty.Empty() || len(empty) != n {
			t.Fatalf("n=%d: SketchInto(nil, nil) not an empty signature", n)
		}
	}
}

// benchSigPair sketches two overlapping k-mer sets at the paper's
// whole-metagenome defaults (k=5, n=100 hashes) for pair benchmarks.
func benchSigPair() (Signature, Signature) {
	sk := MustSketcher(100, 5, 1)
	rng := rand.New(rand.NewSource(9))
	a, b := kmer.Set{}, kmer.Set{}
	for i := 0; i < 300; i++ {
		x := rng.Uint64() % kmer.FeatureSpace(5)
		a.Add(x)
		if i%2 == 0 {
			b.Add(x) // ~50% overlap
		}
	}
	for i := 0; i < 150; i++ {
		b.Add(rng.Uint64() % kmer.FeatureSpace(5))
	}
	return sk.Sketch(a), sk.Sketch(b)
}

// BenchmarkSimilaritySetOverlapLegacy is the pre-kernel per-pair cost:
// both signatures are re-sorted and re-allocated on every call.
func BenchmarkSimilaritySetOverlapLegacy(b *testing.B) {
	sa, sb := benchSigPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SetOverlap.Similarity(sa, sb)
	}
}

// BenchmarkSimilarityPrepared is the kernel path: signatures prepared
// once, each pair a single allocation-free merge.
func BenchmarkSimilarityPrepared(b *testing.B) {
	sa, sb := benchSigPair()
	pa, pb := Prepare(sa), Prepare(sb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SetOverlap.SimilarityPrepared(pa, pb)
	}
}

// BenchmarkSketchInto100Hashes is the unrolled slice-kernel counterpart
// of BenchmarkSketch100Hashes: the same distinct feature set (so both
// kernels do identical hash-evaluation work), fed as a slice with the
// lanes unrolled 4-wide and the destination reused.
func BenchmarkSketchInto100Hashes(b *testing.B) {
	s := MustSketcher(100, 5, 1)
	rng := rand.New(rand.NewSource(2))
	set := kmer.Set{}
	for i := 0; i < 1000; i++ {
		set.Add(rng.Uint64() % kmer.FeatureSpace(5))
	}
	kms := set.Sorted()
	dst := make(Signature, s.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.SketchInto(dst, kms)
	}
}

// benchRead is a 250bp unambiguous read for the per-read sketch pair.
func benchRead() []byte {
	rng := rand.New(rand.NewSource(4))
	seq := make([]byte, 250)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	return seq
}

// BenchmarkSketchReadLegacy measures the pipeline's pre-kernel per-read
// cost: materialize the k-mer set map, then walk it lane by lane.
func BenchmarkSketchReadLegacy(b *testing.B) {
	s := MustSketcher(100, 5, 1)
	ex := kmer.MustExtractor(5)
	seq := benchRead()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sketch(ex.Set(seq))
	}
}

// BenchmarkSketchReadKernel measures the kernel per-read cost: stream
// occurrences into a reused slice and sketch with the unrolled kernel
// (the signature itself is still allocated — it is retained downstream).
func BenchmarkSketchReadKernel(b *testing.B) {
	s := MustSketcher(100, 5, 1)
	ex := kmer.MustExtractor(5)
	seq := benchRead()
	var buf []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ex.SliceInto(buf[:0], seq)
		_ = s.SketchInto(nil, buf)
	}
}
