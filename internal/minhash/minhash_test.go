package minhash

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/metagenomics/mrmcminh/internal/kmer"
)

func TestNewHashFamilyValidation(t *testing.T) {
	if _, err := NewHashFamily(0, 100, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewHashFamily(5, 0, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewHashFamily(5, MersennePrime61, 1); err == nil {
		t.Error("m >= p should fail")
	}
	f, err := NewHashFamily(5, 1024, 1)
	if err != nil || f.N() != 5 {
		t.Fatalf("valid family failed: %v", err)
	}
	for i := range f.A {
		if f.A[i] == 0 || f.A[i] >= f.P || f.B[i] >= f.P {
			t.Fatalf("parameter out of range: a=%d b=%d", f.A[i], f.B[i])
		}
	}
}

func TestHashFamilyDeterminism(t *testing.T) {
	f1 := MustHashFamily(10, 1024, 42)
	f2 := MustHashFamily(10, 1024, 42)
	for i := 0; i < 10; i++ {
		if f1.A[i] != f2.A[i] || f1.B[i] != f2.B[i] {
			t.Fatal("same seed produced different families")
		}
	}
	f3 := MustHashFamily(10, 1024, 43)
	same := true
	for i := 0; i < 10; i++ {
		if f1.A[i] != f3.A[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical families")
	}
}

func TestHashRange(t *testing.T) {
	f := MustHashFamily(8, 1<<10, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 1000; trial++ {
		x := rng.Uint64() % (1 << 10)
		for i := 0; i < f.N(); i++ {
			if h := f.Hash(i, x); h >= f.M {
				t.Fatalf("hash %d out of range %d", h, f.M)
			}
		}
	}
}

// TestMulAddMod61 cross-checks the Mersenne folding arithmetic against
// big-number-free reference computation using math/bits via a different
// route: ((a mod p)*(x mod p) + b) mod p computed with 128-bit longhand.
func TestMulAddMod61(t *testing.T) {
	ref := func(a, x, b uint64) uint64 {
		// Compute (a*x + b) mod p with arbitrary-precision arithmetic.
		p := new(big.Int).SetUint64(MersennePrime61)
		v := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(x))
		v.Add(v, new(big.Int).SetUint64(b))
		return v.Mod(v, p).Uint64()
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5000; trial++ {
		a := rng.Uint64() % MersennePrime61
		x := rng.Uint64() % MersennePrime61
		b := rng.Uint64() % MersennePrime61
		if got, want := mulAddMod61(a, x, b), ref(a, x, b); got != want {
			t.Fatalf("mulAddMod61(%d,%d,%d) = %d, want %d", a, x, b, got, want)
		}
	}
}

func TestSketchEmptySet(t *testing.T) {
	s := MustSketcher(10, 5, 1)
	sig := s.Sketch(kmer.Set{})
	if !sig.Empty() {
		t.Fatal("empty set should give empty signature")
	}
	if MatchedPositions.Similarity(sig, sig) != 0 {
		t.Fatal("empty signatures must have similarity 0")
	}
}

func TestSketchIdenticalSets(t *testing.T) {
	s := MustSketcher(50, 5, 1)
	set := kmer.FromSlice([]uint64{1, 5, 9, 100, 77})
	a := s.Sketch(set)
	b := s.Sketch(set)
	if !a.Equal(b) {
		t.Fatal("same set must sketch identically")
	}
	if MatchedPositions.Similarity(a, b) != 1 {
		t.Fatal("identical sketches must have similarity 1")
	}
	if SetOverlap.Similarity(a, b) != 1 {
		t.Fatal("identical sketches must have set-overlap similarity 1")
	}
}

func TestSketchSliceMatchesSet(t *testing.T) {
	s := MustSketcher(20, 5, 2)
	kms := []uint64{3, 3, 7, 7, 7, 11}
	a := s.SketchSlice(kms)
	b := s.Sketch(kmer.FromSlice(kms))
	if !a.Equal(b) {
		t.Fatal("SketchSlice and Sketch disagree")
	}
}

// TestEstimatorConvergence verifies the statistical heart of the paper:
// the matched-positions estimate converges to the true Jaccard similarity
// as the number of hash functions grows (Eq. 3).
func TestEstimatorConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k := 8
	for _, wantJ := range []float64{0.2, 0.5, 0.8} {
		// Build two sets with a controlled overlap.
		shared := int(wantJ * 600)
		only := 600 - shared
		a, b := kmer.Set{}, kmer.Set{}
		for i := 0; i < shared; i++ {
			v := rng.Uint64() % kmer.FeatureSpace(k)
			a.Add(v)
			b.Add(v)
		}
		for i := 0; i < only; i++ {
			a.Add(rng.Uint64() % kmer.FeatureSpace(k))
			b.Add(rng.Uint64() % kmer.FeatureSpace(k))
		}
		trueJ := kmer.Jaccard(a, b)
		s := MustSketcher(500, k, 13)
		got := MatchedPositions.Similarity(s.Sketch(a), s.Sketch(b))
		if math.Abs(got-trueJ) > 0.08 {
			t.Errorf("estimate %.3f too far from true %.3f", got, trueJ)
		}
	}
}

func TestEstimatorSymmetryAndRange(t *testing.T) {
	s := MustSketcher(30, 6, 5)
	f := func(xs, ys []uint64) bool {
		mask := kmer.FeatureSpace(6) - 1
		a, b := kmer.Set{}, kmer.Set{}
		for _, x := range xs {
			a.Add(x & mask)
		}
		for _, y := range ys {
			b.Add(y & mask)
		}
		sa, sb := s.Sketch(a), s.Sketch(b)
		for _, est := range []Estimator{MatchedPositions, SetOverlap} {
			v1, v2 := est.Similarity(sa, sb), est.Similarity(sb, sa)
			if v1 != v2 || v1 < 0 || v1 > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorString(t *testing.T) {
	if MatchedPositions.String() != "matched-positions" || SetOverlap.String() != "set-overlap" {
		t.Fatal("estimator names wrong")
	}
	if Estimator(99).String() != "unknown" {
		t.Fatal("unknown estimator name wrong")
	}
}

func TestSignatureClone(t *testing.T) {
	s := Signature{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSignatureEqualLengthMismatch(t *testing.T) {
	if (Signature{1, 2}).Equal(Signature{1}) {
		t.Fatal("different lengths must not be equal")
	}
}

func TestBandIndexValidation(t *testing.T) {
	if _, err := NewBandIndex(0, 5); err == nil {
		t.Error("bands=0 should fail")
	}
	if _, err := NewBandIndex(5, 0); err == nil {
		t.Error("rows=0 should fail")
	}
	ix, _ := NewBandIndex(5, 4)
	if _, err := ix.Add(make(Signature, 10)); err == nil {
		t.Error("short signature should fail")
	}
}

func TestBandIndexFindsSimilar(t *testing.T) {
	s := MustSketcher(40, 8, 21)
	rng := rand.New(rand.NewSource(22))
	base := kmer.Set{}
	for i := 0; i < 300; i++ {
		base.Add(rng.Uint64() % kmer.FeatureSpace(8))
	}
	// near: shares ~90% of elements with base
	near := kmer.Set{}
	i := 0
	for v := range base {
		if i%10 != 0 {
			near.Add(v)
		}
		i++
	}
	for len(near) < len(base) {
		near.Add(rng.Uint64() % kmer.FeatureSpace(8))
	}
	// far: disjoint random set
	far := kmer.Set{}
	for len(far) < 300 {
		far.Add(rng.Uint64() % kmer.FeatureSpace(8))
	}

	ix, _ := NewBandIndex(10, 4)
	baseID, err := ix.Add(s.Sketch(base))
	if err != nil {
		t.Fatal(err)
	}
	cands := ix.Candidates(s.Sketch(near))
	found := false
	for _, id := range cands {
		if id == baseID {
			found = true
		}
	}
	if !found {
		t.Fatal("band index missed a highly similar signature")
	}
	if len(ix.Candidates(s.Sketch(far))) != 0 {
		t.Fatal("band index matched a disjoint signature")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if !ix.Signature(baseID).Equal(s.Sketch(base)) {
		t.Fatal("stored signature mismatch")
	}
}

func TestCollisionProbability(t *testing.T) {
	// s=1 always collides, s=0 never.
	if p := CollisionProbability(1, 10, 4); p != 1 {
		t.Fatalf("p(1) = %v", p)
	}
	if p := CollisionProbability(0, 10, 4); p != 0 {
		t.Fatalf("p(0) = %v", p)
	}
	// Monotonic in s.
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.1 {
		p := CollisionProbability(s, 10, 4)
		if p < prev {
			t.Fatal("collision probability not monotonic")
		}
		prev = p
	}
}

func BenchmarkSketch100Hashes(b *testing.B) {
	s := MustSketcher(100, 5, 1)
	rng := rand.New(rand.NewSource(2))
	set := kmer.Set{}
	for i := 0; i < 1000; i++ {
		set.Add(rng.Uint64() % kmer.FeatureSpace(5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sketch(set)
	}
}

func BenchmarkSimilarityMatched(b *testing.B) {
	s := MustSketcher(100, 5, 1)
	set := kmer.FromSlice([]uint64{1, 2, 3, 4, 5, 6, 7, 8})
	sig := s.Sketch(set)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatchedPositions.Similarity(sig, sig)
	}
}
