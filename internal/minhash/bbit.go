package minhash

import (
	"fmt"
	"math/bits"
)

// b-bit minwise hashing (Li & König, 2010; the paper cites the follow-up
// GPU implementation) — an extension that stores only the lowest b bits of
// each minwise value, shrinking sketches 64/b-fold. Equal minima still
// match, but unequal minima now collide with probability ~2^-b; the
// estimator removes that inflation analytically:
//
//	E[match fraction] = J + (1-J)·2^-b
//	Ĵ = (match - 2^-b) / (1 - 2^-b)
//
// At b=1 a 100-hash sketch is 100 *bits* per read — the storage regime
// that makes terabyte-scale collections (paper §II) sketchable in RAM.

// BBitSignature is a compacted signature: b bits per hash function,
// packed little-endian into 64-bit words.
type BBitSignature struct {
	B     int
	N     int
	Words []uint64
	empty bool
}

// PackedWords returns the number of 64-bit words a b-bit packing of an
// n-slot signature occupies: ceil(n*b/64).
func PackedWords(n, b int) int { return (n*b + 63) / 64 }

// Compact reduces a full signature to its lowest b bits per slot.
// b must be in [1,16] (larger b defeats the purpose; use Signature).
func Compact(sig Signature, b int) (BBitSignature, error) {
	if b < 1 || b > 16 {
		return BBitSignature{}, fmt.Errorf("minhash: b must be in [1,16], got %d", b)
	}
	words := make([]uint64, PackedWords(len(sig), b))
	CompactInto(words, sig, b)
	return BBitSignature{B: b, N: len(sig), Words: words, empty: sig.Empty()}, nil
}

// CompactInto packs the lowest b bits of each slot of sig little-endian
// into dst, which must hold PackedWords(len(sig), b) zeroed words. It is
// the allocation-free core of Compact, used by the signature store to pack
// straight into an arena row. b is trusted to be in [1,16] (callers
// validate once per store, not per read).
func CompactInto(dst []uint64, sig Signature, b int) {
	mask := uint64(1)<<b - 1
	for i, v := range sig {
		chunk := v & mask
		bit := i * b
		word, off := bit/64, uint(bit%64)
		dst[word] |= chunk << off
		if off+uint(b) > 64 && word+1 < len(dst) {
			dst[word+1] |= chunk >> (64 - off)
		}
	}
}

// Borrow wraps already-packed words — typically a signature-store arena
// row — as a BBitSignature without copying. The caller asserts the
// geometry and whether the source signature was empty.
func Borrow(b, n int, words []uint64, empty bool) BBitSignature {
	return BBitSignature{B: b, N: n, Words: words, empty: empty}
}

// slot extracts the i-th b-bit value.
func (s BBitSignature) slot(i int) uint64 {
	bit := i * s.B
	word, off := bit/64, uint(bit%64)
	mask := uint64(1)<<s.B - 1
	v := s.Words[word] >> off
	if off+uint(s.B) > 64 && word+1 < len(s.Words) {
		v |= s.Words[word+1] << (64 - off)
	}
	return v & mask
}

// Empty reports whether the source signature was empty.
func (s BBitSignature) Empty() bool { return s.empty }

// Bytes returns the storage footprint in bytes.
func (s BBitSignature) Bytes() int { return 8 * len(s.Words) }

// Similarity estimates Jaccard similarity from two b-bit signatures with
// the collision correction. Estimates are clamped to [0,1]. Mismatched
// geometry is an error.
func (s BBitSignature) Similarity(o BBitSignature) (float64, error) {
	if s.B != o.B || s.N != o.N {
		return 0, fmt.Errorf("minhash: b-bit geometry mismatch (%d/%d vs %d/%d)", s.B, s.N, o.B, o.N)
	}
	return s.SimilarityFast(o), nil
}

// SimilarityFast is Similarity for callers that already guarantee equal
// geometry — two views into the same signature store — so the hot pair
// loop carries no error path.
func (s BBitSignature) SimilarityFast(o BBitSignature) float64 {
	if s.Empty() || o.Empty() || s.N == 0 {
		return 0
	}
	frac := float64(s.MatchCount(o)) / float64(s.N)
	// 2^-b computed as an exact reciprocal: identical float to
	// math.Pow(2, -b) for b in [1,16], without the libm call per pair.
	c := 1 / float64(uint64(1)<<uint(s.B))
	est := (frac - c) / (1 - c)
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est
}

// MatchCount counts equal b-bit slots. For the word-aligned widths
// (b ∈ {1,2,4,8,16}) it runs branch-free SWAR over whole words: XOR the
// words, OR-fold each b-bit lane onto its lowest bit (cumulative shift
// reach is b-1, so no bits leak across lane boundaries), then popcount
// the lane-LSB mask to count *differing* lanes. Padding lanes past N are
// zero in both signatures and are subtracted back out. Other widths fall
// back to the per-slot extraction loop. Geometry must match (see
// Similarity for the checked entry point).
func (s BBitSignature) MatchCount(o BBitSignature) int {
	b := s.B
	if b == 64 || (b&(b-1)) != 0 { // not a power of two: slots straddle words
		match := 0
		for i := 0; i < s.N; i++ {
			if s.slot(i) == o.slot(i) {
				match++
			}
		}
		return match
	}
	lsbMask := laneLSBMask(b)
	diff := 0
	for w, sw := range s.Words {
		x := sw ^ o.Words[w]
		for sh := 1; sh < b; sh <<= 1 {
			x |= x >> uint(sh)
		}
		diff += popcount64(x & lsbMask)
	}
	// Every lane that differs is a real slot (padding lanes are 0^0), so
	// matches = N - differing lanes.
	return s.N - diff
}

// laneLSBMask returns a word with bit i*b set for every lane i, the
// popcount mask of the SWAR fold. b must be a power of two in [1,32].
func laneLSBMask(b int) uint64 {
	switch b {
	case 1:
		return ^uint64(0)
	case 2:
		return 0x5555555555555555
	case 4:
		return 0x1111111111111111
	case 8:
		return 0x0101010101010101
	case 16:
		return 0x0001000100010001
	}
	m := uint64(0)
	for bit := 0; bit < 64; bit += b {
		m |= 1 << uint(bit)
	}
	return m
}

// popcount64 is math/bits.OnesCount64 spelled locally to keep the import
// surface of the hot loop obvious.
func popcount64(x uint64) int { return bits.OnesCount64(x) }

// BandHash hashes rows [band*rows, (band+1)*rows) of the packed signature
// with FNV-1a over each b-bit slot value widened to 8 little-endian bytes
// — the packed analogue of the full-signature BandHash. Because equal
// 64-bit minima compact to equal b-bit slots, any pair that collides on a
// band of full values also collides on the packed band: packed buckets
// are a superset of full buckets, so banding recall is preserved (at the
// cost of ~2^-(b·rows) extra false candidates per band, which θ
// verification removes).
func (s BBitSignature) BandHash(band, rows int) uint64 {
	h := uint64(fnvOffset64)
	for r := band * rows; r < band*rows+rows; r++ {
		h = fnvMix64(h, s.slot(r))
	}
	return h
}
