package minhash

import (
	"fmt"
	"math"
)

// b-bit minwise hashing (Li & König, 2010; the paper cites the follow-up
// GPU implementation) — an extension that stores only the lowest b bits of
// each minwise value, shrinking sketches 64/b-fold. Equal minima still
// match, but unequal minima now collide with probability ~2^-b; the
// estimator removes that inflation analytically:
//
//	E[match fraction] = J + (1-J)·2^-b
//	Ĵ = (match - 2^-b) / (1 - 2^-b)
//
// At b=1 a 100-hash sketch is 100 *bits* per read — the storage regime
// that makes terabyte-scale collections (paper §II) sketchable in RAM.

// BBitSignature is a compacted signature: b bits per hash function,
// packed little-endian into 64-bit words.
type BBitSignature struct {
	B     int
	N     int
	Words []uint64
	empty bool
}

// Compact reduces a full signature to its lowest b bits per slot.
// b must be in [1,16] (larger b defeats the purpose; use Signature).
func Compact(sig Signature, b int) (BBitSignature, error) {
	if b < 1 || b > 16 {
		return BBitSignature{}, fmt.Errorf("minhash: b must be in [1,16], got %d", b)
	}
	out := BBitSignature{B: b, N: len(sig), empty: sig.Empty()}
	bitsNeeded := b * len(sig)
	out.Words = make([]uint64, (bitsNeeded+63)/64)
	mask := uint64(1)<<b - 1
	for i, v := range sig {
		chunk := v & mask
		bit := i * b
		word, off := bit/64, uint(bit%64)
		out.Words[word] |= chunk << off
		if off+uint(b) > 64 && word+1 < len(out.Words) {
			out.Words[word+1] |= chunk >> (64 - off)
		}
	}
	return out, nil
}

// slot extracts the i-th b-bit value.
func (s BBitSignature) slot(i int) uint64 {
	bit := i * s.B
	word, off := bit/64, uint(bit%64)
	mask := uint64(1)<<s.B - 1
	v := s.Words[word] >> off
	if off+uint(s.B) > 64 && word+1 < len(s.Words) {
		v |= s.Words[word+1] << (64 - off)
	}
	return v & mask
}

// Empty reports whether the source signature was empty.
func (s BBitSignature) Empty() bool { return s.empty }

// Bytes returns the storage footprint in bytes.
func (s BBitSignature) Bytes() int { return 8 * len(s.Words) }

// Similarity estimates Jaccard similarity from two b-bit signatures with
// the collision correction. Estimates are clamped to [0,1]. Mismatched
// geometry is an error.
func (s BBitSignature) Similarity(o BBitSignature) (float64, error) {
	if s.B != o.B || s.N != o.N {
		return 0, fmt.Errorf("minhash: b-bit geometry mismatch (%d/%d vs %d/%d)", s.B, s.N, o.B, o.N)
	}
	if s.Empty() || o.Empty() {
		return 0, nil
	}
	if s.N == 0 {
		return 0, nil
	}
	match := 0
	for i := 0; i < s.N; i++ {
		if s.slot(i) == o.slot(i) {
			match++
		}
	}
	frac := float64(match) / float64(s.N)
	c := math.Pow(2, -float64(s.B))
	est := (frac - c) / (1 - c)
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}
