package minhash

import (
	"fmt"
	"hash/fnv"
)

// BandIndex is a locality-sensitive-hashing index over minwise signatures,
// the data structure behind the authors' earlier MC-LSH algorithm: the
// signature is split into b bands of r rows each; two signatures become
// candidates if any band hashes identically. The probability that a pair
// with Jaccard similarity s collides in at least one band is
// 1 - (1 - s^r)^b, an S-curve with threshold near (1/b)^(1/r).
type BandIndex struct {
	Bands   int
	Rows    int
	buckets []map[uint64][]int // per band: band-hash -> signature ids
	sigs    []Signature
}

// NewBandIndex creates an index for signatures of length bands*rows.
func NewBandIndex(bands, rows int) (*BandIndex, error) {
	if bands < 1 || rows < 1 {
		return nil, fmt.Errorf("minhash: bands and rows must be positive (got %d, %d)", bands, rows)
	}
	idx := &BandIndex{Bands: bands, Rows: rows, buckets: make([]map[uint64][]int, bands)}
	for i := range idx.buckets {
		idx.buckets[i] = make(map[uint64][]int)
	}
	return idx, nil
}

// SignatureLen returns the required signature length bands*rows.
func (ix *BandIndex) SignatureLen() int { return ix.Bands * ix.Rows }

// Add inserts a signature and returns its id.
func (ix *BandIndex) Add(sig Signature) (int, error) {
	if len(sig) < ix.SignatureLen() {
		return 0, fmt.Errorf("minhash: signature length %d < bands*rows %d", len(sig), ix.SignatureLen())
	}
	id := len(ix.sigs)
	ix.sigs = append(ix.sigs, sig)
	for b := 0; b < ix.Bands; b++ {
		h := ix.bandHash(sig, b)
		ix.buckets[b][h] = append(ix.buckets[b][h], id)
	}
	return id, nil
}

// Candidates returns the distinct ids of previously added signatures that
// share at least one band with sig (excluding none; callers filter self).
func (ix *BandIndex) Candidates(sig Signature) []int {
	seen := make(map[int]struct{})
	var out []int
	for b := 0; b < ix.Bands; b++ {
		h := ix.bandHash(sig, b)
		for _, id := range ix.buckets[b][h] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}

// Signature returns the stored signature for id.
func (ix *BandIndex) Signature(id int) Signature { return ix.sigs[id] }

// Len returns the number of indexed signatures.
func (ix *BandIndex) Len() int { return len(ix.sigs) }

// bandHash hashes rows [b*r, (b+1)*r) of sig.
func (ix *BandIndex) bandHash(sig Signature, b int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for r := 0; r < ix.Rows; r++ {
		v := sig[b*ix.Rows+r]
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// CollisionProbability returns the analytic probability that a pair with
// Jaccard similarity s becomes a candidate: 1 - (1 - s^r)^b.
func CollisionProbability(s float64, bands, rows int) float64 {
	p := 1.0
	sr := 1.0
	for i := 0; i < rows; i++ {
		sr *= s
	}
	for i := 0; i < bands; i++ {
		p *= 1 - sr
	}
	return 1 - p
}
