package minhash

import "fmt"

// BandIndex is a locality-sensitive-hashing index over minwise signatures,
// the data structure behind the authors' earlier MC-LSH algorithm: the
// signature is split into b bands of r rows each; two signatures become
// candidates if any band hashes identically. The probability that a pair
// with Jaccard similarity s collides in at least one band is
// 1 - (1 - s^r)^b, an S-curve with threshold near (1/b)^(1/r).
type BandIndex struct {
	Bands   int
	Rows    int
	buckets []map[uint64][]int // per band: band-hash -> signature ids
	sigs    []Signature
	// marks/gen implement allocation-free candidate dedup: marks[id]
	// holds the generation of the last query that saw id, so a query
	// only needs one counter bump instead of a fresh set.
	marks []uint32
	gen   uint32
}

// NewBandIndex creates an index for signatures of length bands*rows.
func NewBandIndex(bands, rows int) (*BandIndex, error) {
	if bands < 1 || rows < 1 {
		return nil, fmt.Errorf("minhash: bands and rows must be positive (got %d, %d)", bands, rows)
	}
	idx := &BandIndex{Bands: bands, Rows: rows, buckets: make([]map[uint64][]int, bands)}
	for i := range idx.buckets {
		idx.buckets[i] = make(map[uint64][]int)
	}
	return idx, nil
}

// SignatureLen returns the required signature length bands*rows.
func (ix *BandIndex) SignatureLen() int { return ix.Bands * ix.Rows }

// Add inserts a signature and returns its id.
func (ix *BandIndex) Add(sig Signature) (int, error) {
	if len(sig) < ix.SignatureLen() {
		return 0, fmt.Errorf("minhash: signature length %d < bands*rows %d", len(sig), ix.SignatureLen())
	}
	id := len(ix.sigs)
	ix.sigs = append(ix.sigs, sig)
	ix.marks = append(ix.marks, 0)
	for b := 0; b < ix.Bands; b++ {
		h := BandHash(sig, b, ix.Rows)
		ix.buckets[b][h] = append(ix.buckets[b][h], id)
	}
	return id, nil
}

// Candidates returns the distinct ids of previously added signatures that
// share at least one band with sig (excluding none; callers filter self).
func (ix *BandIndex) Candidates(sig Signature) []int {
	return ix.CandidatesInto(sig, nil)
}

// CandidatesInto appends the distinct candidate ids for sig to buf
// (usually buf[:0] of a reused slice) and returns the extended slice. The
// result order is identical to Candidates — first encounter across bands
// — but the dedup set is a generation-stamped array owned by the index,
// so a hot caller like GreedyLSH performs zero allocations per query once
// buf has grown to its working size.
func (ix *BandIndex) CandidatesInto(sig Signature, buf []int) []int {
	ix.gen++
	if ix.gen == 0 { // generation counter wrapped: invalidate stale marks
		for i := range ix.marks {
			ix.marks[i] = 0
		}
		ix.gen = 1
	}
	for b := 0; b < ix.Bands; b++ {
		h := BandHash(sig, b, ix.Rows)
		for _, id := range ix.buckets[b][h] {
			if ix.marks[id] != ix.gen {
				ix.marks[id] = ix.gen
				buf = append(buf, id)
			}
		}
	}
	return buf
}

// Signature returns the stored signature for id.
func (ix *BandIndex) Signature(id int) Signature { return ix.sigs[id] }

// Len returns the number of indexed signatures.
func (ix *BandIndex) Len() int { return len(ix.sigs) }

// FNV-1a parameters (hash/fnv's 64-bit variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// BandHash hashes rows [band*rows, (band+1)*rows) of sig with FNV-1a over
// the little-endian bytes of each row value — bit-compatible with feeding
// the same bytes through hash/fnv, but inlined so hashing a band performs
// zero allocations (the hasher + 8-byte buffer the stdlib path allocated
// per band per signature). This is both BandIndex's bucket hash and the
// map-side bucket key of the LSH candidate-generation MapReduce stage.
func BandHash(sig Signature, band, rows int) uint64 {
	h := uint64(fnvOffset64)
	for r := band * rows; r < band*rows+rows; r++ {
		h = fnvMix64(h, sig[r])
	}
	return h
}

// fnvMix64 folds the 8 little-endian bytes of v into the running FNV-1a
// state h. Shared by the full-signature BandHash and the b-bit packed
// BBitSignature.BandHash so both produce stdlib-fnv-compatible hashes.
func fnvMix64(h, v uint64) uint64 {
	h = (h ^ (v & 0xff)) * fnvPrime64
	h = (h ^ (v >> 8 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 16 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 24 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 32 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 40 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 48 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 56)) * fnvPrime64
	return h
}

// CollisionProbability returns the analytic probability that a pair with
// Jaccard similarity s becomes a candidate: 1 - (1 - s^r)^b.
func CollisionProbability(s float64, bands, rows int) float64 {
	p := 1.0
	sr := 1.0
	for i := 0; i < rows; i++ {
		sr *= s
	}
	for i := 0; i < bands; i++ {
		p *= 1 - sr
	}
	return 1 - p
}
