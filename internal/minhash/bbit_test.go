package minhash

import (
	"math"
	"math/rand"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/kmer"
)

func TestCompactValidation(t *testing.T) {
	sig := Signature{1, 2, 3}
	if _, err := Compact(sig, 0); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := Compact(sig, 17); err == nil {
		t.Error("b=17 accepted")
	}
	for _, b := range []int{1, 2, 8, 16} {
		if _, err := Compact(sig, b); err != nil {
			t.Errorf("b=%d rejected: %v", b, err)
		}
	}
}

func TestCompactSlotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range []int{1, 3, 7, 11, 16} {
		sig := make(Signature, 100)
		for i := range sig {
			sig[i] = rng.Uint64()
		}
		c, err := Compact(sig, b)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<b - 1
		for i, v := range sig {
			if got := c.slot(i); got != v&mask {
				t.Fatalf("b=%d slot %d = %x, want %x", b, i, got, v&mask)
			}
		}
	}
}

func TestBBitStorageShrinks(t *testing.T) {
	sig := make(Signature, 128) // 1 KiB raw
	c1, _ := Compact(sig, 1)
	c8, _ := Compact(sig, 8)
	if c1.Bytes() != 16 { // 128 bits
		t.Fatalf("b=1 bytes %d", c1.Bytes())
	}
	if c8.Bytes() != 128 {
		t.Fatalf("b=8 bytes %d", c8.Bytes())
	}
}

func TestBBitIdenticalAndEmpty(t *testing.T) {
	sk := MustSketcher(64, 8, 1)
	set := kmer.FromSlice([]uint64{1, 9, 17, 33})
	sig := sk.Sketch(set)
	c, _ := Compact(sig, 4)
	sim, err := c.Similarity(c)
	if err != nil || sim != 1 {
		t.Fatalf("self similarity %v, %v", sim, err)
	}
	emptyC, _ := Compact(sk.Sketch(kmer.Set{}), 4)
	sim, err = emptyC.Similarity(c)
	if err != nil || sim != 0 {
		t.Fatalf("empty similarity %v, %v", sim, err)
	}
}

func TestBBitGeometryMismatch(t *testing.T) {
	a, _ := Compact(make(Signature, 10), 2)
	b4, _ := Compact(make(Signature, 10), 4)
	short, _ := Compact(make(Signature, 5), 2)
	if _, err := a.Similarity(b4); err == nil {
		t.Error("b mismatch accepted")
	}
	if _, err := a.Similarity(short); err == nil {
		t.Error("n mismatch accepted")
	}
}

// TestBBitEstimatorConverges verifies the collision-corrected estimate
// tracks the true Jaccard for several b values.
func TestBBitEstimatorConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k = 10
	sk := MustSketcher(1024, k, 6) // many hashes to isolate the b-bit error
	for _, wantJ := range []float64{0.3, 0.7} {
		shared := int(wantJ * 500)
		only := 500 - shared
		a, b := kmer.Set{}, kmer.Set{}
		for i := 0; i < shared; i++ {
			v := rng.Uint64() % kmer.FeatureSpace(k)
			a.Add(v)
			b.Add(v)
		}
		for i := 0; i < only; i++ {
			a.Add(rng.Uint64() % kmer.FeatureSpace(k))
			b.Add(rng.Uint64() % kmer.FeatureSpace(k))
		}
		trueJ := kmer.Jaccard(a, b)
		sa, sb := sk.Sketch(a), sk.Sketch(b)
		for _, bits := range []int{1, 2, 4, 8} {
			ca, _ := Compact(sa, bits)
			cb, _ := Compact(sb, bits)
			got, err := ca.Similarity(cb)
			if err != nil {
				t.Fatal(err)
			}
			tol := 0.10
			if bits == 1 {
				tol = 0.15 // highest-variance setting
			}
			if math.Abs(got-trueJ) > tol {
				t.Errorf("b=%d: estimate %.3f vs true %.3f", bits, got, trueJ)
			}
		}
	}
}

// TestBBitUncorrectedWouldInflate documents why the correction exists: the
// raw match fraction at small b sits well above the true Jaccard.
func TestBBitUncorrectedWouldInflate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k = 10
	sk := MustSketcher(512, k, 8)
	a, b := kmer.Set{}, kmer.Set{}
	for i := 0; i < 400; i++ { // disjoint sets: true J ~ 0
		a.Add(rng.Uint64() % kmer.FeatureSpace(k))
		b.Add(rng.Uint64() % kmer.FeatureSpace(k))
	}
	ca, _ := Compact(sk.Sketch(a), 1)
	cb, _ := Compact(sk.Sketch(b), 1)
	match := 0
	for i := 0; i < ca.N; i++ {
		if ca.slot(i) == cb.slot(i) {
			match++
		}
	}
	rawFrac := float64(match) / float64(ca.N)
	if rawFrac < 0.4 { // ~0.5 expected from 1-bit collisions
		t.Fatalf("raw 1-bit match fraction %.3f suspiciously low", rawFrac)
	}
	corrected, _ := ca.Similarity(cb)
	if corrected > 0.12 {
		t.Fatalf("corrected estimate %.3f should be near 0", corrected)
	}
}

func BenchmarkBBitSimilarity(b *testing.B) {
	sk := MustSketcher(128, 8, 1)
	s1 := sk.Sketch(kmer.FromSlice([]uint64{1, 2, 3}))
	s2 := sk.Sketch(kmer.FromSlice([]uint64{2, 3, 4}))
	c1, _ := Compact(s1, 2)
	c2, _ := Compact(s2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c1.Similarity(c2); err != nil {
			b.Fatal(err)
		}
	}
}
