package minhash

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// bandHashLegacy is the pre-optimization band hash: a fresh fnv.New64a
// hasher plus an 8-byte scratch buffer per band per signature. Kept as
// the before/after reference for BenchmarkBandHash and the
// bit-compatibility test below.
func bandHashLegacy(sig Signature, band, rows int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for r := 0; r < rows; r++ {
		v := sig[band*rows+r]
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// candidatesLegacy is the pre-optimization query: a fresh map and result
// slice per call. Kept as the before/after reference for
// BenchmarkCandidates.
func candidatesLegacy(ix *BandIndex, sig Signature) []int {
	seen := make(map[int]struct{})
	var out []int
	for b := 0; b < ix.Bands; b++ {
		h := BandHash(sig, b, ix.Rows)
		for _, id := range ix.buckets[b][h] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}

func randomSignatures(n, sigLen int, seed int64) []Signature {
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]Signature, n)
	for i := range sigs {
		s := make(Signature, sigLen)
		base := rng.Uint64() % 32 // force bucket collisions
		for j := range s {
			s[j] = base*1000 + uint64(rng.Intn(4))
		}
		sigs[i] = s
	}
	return sigs
}

func TestBandHashMatchesFNV(t *testing.T) {
	for _, sig := range randomSignatures(50, 96, 7) {
		for _, rows := range []int{1, 2, 3, 8} {
			for b := 0; b < len(sig)/rows; b++ {
				got := BandHash(sig, b, rows)
				want := bandHashLegacy(sig, b, rows)
				if got != want {
					t.Fatalf("BandHash(band=%d rows=%d) = %x, legacy fnv = %x", b, rows, got, want)
				}
			}
		}
	}
}

func TestCandidatesIntoMatchesCandidates(t *testing.T) {
	ix, err := NewBandIndex(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	sigs := randomSignatures(200, 64, 11)
	for _, s := range sigs {
		if _, err := ix.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	var buf []int
	for i, s := range sigs {
		want := candidatesLegacy(ix, s)
		buf = ix.CandidatesInto(s, buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("sig %d: CandidatesInto found %d candidates, legacy %d", i, len(buf), len(want))
		}
		for j := range buf {
			if buf[j] != want[j] {
				t.Fatalf("sig %d: candidate order diverges at %d: %d vs %d", i, j, buf[j], want[j])
			}
		}
	}
}

func TestCandidatesIntoGenerationWrap(t *testing.T) {
	ix, err := NewBandIndex(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sig := Signature{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := ix.Add(sig); err != nil {
		t.Fatal(err)
	}
	ix.gen = ^uint32(0) - 1 // force the counter through zero
	for i := 0; i < 4; i++ {
		got := ix.CandidatesInto(sig, nil)
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("query %d after wrap: got %v, want [0]", i, got)
		}
	}
}

func BenchmarkBandHashLegacy(b *testing.B) {
	sig := randomSignatures(1, 100, 3)[0]
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for band := 0; band < 20; band++ {
			sink += bandHashLegacy(sig, band, 5)
		}
	}
	_ = sink
}

func BenchmarkBandHash(b *testing.B) {
	sig := randomSignatures(1, 100, 3)[0]
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for band := 0; band < 20; band++ {
			sink += BandHash(sig, band, 5)
		}
	}
	_ = sink
}

func benchIndex(b *testing.B) (*BandIndex, []Signature) {
	b.Helper()
	ix, err := NewBandIndex(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	sigs := randomSignatures(1000, 64, 5)
	for _, s := range sigs {
		if _, err := ix.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	return ix, sigs
}

func BenchmarkCandidatesLegacy(b *testing.B) {
	ix, sigs := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = candidatesLegacy(ix, sigs[i%len(sigs)])
	}
}

func BenchmarkCandidatesInto(b *testing.B) {
	ix, sigs := benchIndex(b)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.CandidatesInto(sigs[i%len(sigs)], buf[:0])
	}
}
