package minhash

// Prepared caches the derived views of a signature that the similarity
// kernels need, so comparing a pair allocates nothing. The all-pairs
// matrix build evaluates O(N²) pairs but only N signatures exist; the
// legacy SetOverlap path re-sorted and re-allocated both signatures for
// every pair. Preparing each signature once amortizes that work to O(N)
// and turns every pair comparison into a single allocation-free merge.
type Prepared struct {
	// Sig is the original signature, used by the matched-positions
	// estimator (slot-wise comparison).
	Sig Signature
	// Vals holds the sorted distinct slot values, used by the set-overlap
	// estimator (sorted-list intersection).
	Vals []uint64
}

// Prepare computes the cached views of one signature.
func Prepare(sig Signature) Prepared {
	return Prepared{Sig: sig, Vals: distinctSorted(sig)}
}

// PrepareAll prepares every signature of a batch.
func PrepareAll(sigs []Signature) []Prepared {
	out := make([]Prepared, len(sigs))
	for i, s := range sigs {
		out[i] = Prepare(s)
	}
	return out
}

// Empty reports whether the underlying signature came from an empty
// feature set.
func (p Prepared) Empty() bool { return p.Sig.Empty() }

// SimilarityPrepared estimates Jaccard similarity from two prepared
// signatures. It returns exactly the same value as Similarity on the
// underlying signatures (bit-identical floats) but performs zero
// allocations per call, making it the kernel for all-pairs matrix builds
// and greedy representative scans.
func (e Estimator) SimilarityPrepared(a, b Prepared) float64 {
	if a.Empty() || b.Empty() {
		return 0
	}
	switch e {
	case SetOverlap:
		return setOverlapSorted(a.Vals, b.Vals)
	default:
		return matchedPositions(a.Sig, b.Sig)
	}
}

// setOverlapSorted computes |A∩B| / |A∪B| of two sorted distinct value
// lists with a single linear merge.
func setOverlapSorted(sa, sb []uint64) float64 {
	inter := 0
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] == sb[j]:
			inter++
			i++
			j++
		case sa[i] < sb[j]:
			i++
		default:
			j++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
