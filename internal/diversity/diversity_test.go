package diversity

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/metagenomics/mrmcminh/internal/metrics"
)

func profileOf(counts ...int) Profile {
	var c metrics.Clustering
	for id, n := range counts {
		for i := 0; i < n; i++ {
			c = append(c, id)
		}
	}
	return NewProfile(c)
}

func TestNewProfile(t *testing.T) {
	p := NewProfile(metrics.Clustering{0, 0, 1, 2, 2, 2, -1})
	if p.Total != 6 {
		t.Fatalf("total %d", p.Total)
	}
	if p.Richness() != 3 {
		t.Fatalf("richness %d", p.Richness())
	}
	if p.Singletons() != 1 || p.Doubletons() != 1 {
		t.Fatalf("F1=%d F2=%d", p.Singletons(), p.Doubletons())
	}
}

func TestShannonKnownValues(t *testing.T) {
	// Two equally abundant OTUs: H' = ln 2.
	p := profileOf(10, 10)
	if got := p.Shannon(); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("H' = %v, want ln 2", got)
	}
	// Single OTU: H' = 0.
	if got := profileOf(42).Shannon(); got != 0 {
		t.Fatalf("single-OTU H' = %v", got)
	}
	// Empty: 0.
	if got := (Profile{}).Shannon(); got != 0 {
		t.Fatalf("empty H' = %v", got)
	}
}

func TestSimpsonKnownValues(t *testing.T) {
	// Two equal OTUs: 1 - 2*(1/2)² = 0.5.
	if got := profileOf(5, 5).Simpson(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Simpson = %v", got)
	}
	if got := profileOf(7).Simpson(); got != 0 {
		t.Fatalf("single-OTU Simpson = %v", got)
	}
	if got := (Profile{}).Simpson(); got != 0 {
		t.Fatalf("empty Simpson = %v", got)
	}
}

func TestChao1(t *testing.T) {
	// S=3, F1=2 (two singletons), F2=1 -> 3 + 4/2 = 5.
	p := profileOf(1, 1, 2)
	if got := p.Chao1(); got != 5 {
		t.Fatalf("Chao1 = %v, want 5", got)
	}
	// F2=0 bias-corrected: S=2, F1=2 -> 2 + 2*1/2 = 3.
	p = profileOf(1, 1)
	if got := p.Chao1(); got != 3 {
		t.Fatalf("Chao1 = %v, want 3", got)
	}
	// No singletons: Chao1 = S.
	p = profileOf(3, 4)
	if got := p.Chao1(); got != 2 {
		t.Fatalf("Chao1 = %v, want 2", got)
	}
}

func TestGoodsCoverage(t *testing.T) {
	// 10 reads, 2 singletons -> 0.8.
	p := profileOf(4, 4, 1, 1)
	if got := p.GoodsCoverage(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("coverage %v", got)
	}
	if got := (Profile{}).GoodsCoverage(); got != 0 {
		t.Fatalf("empty coverage %v", got)
	}
}

func TestEvenness(t *testing.T) {
	if got := profileOf(5, 5, 5).Evenness(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform evenness %v", got)
	}
	if got := profileOf(100, 1).Evenness(); got >= 0.5 {
		t.Fatalf("skewed evenness %v", got)
	}
	if got := profileOf(9).Evenness(); got != 1 {
		t.Fatalf("single-OTU evenness %v", got)
	}
}

func TestDiversityBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var counts []int
		for _, r := range raw {
			if r > 0 {
				counts = append(counts, int(r))
			}
		}
		if len(counts) == 0 {
			return true
		}
		p := profileOf(counts...)
		if p.Shannon() < 0 || p.Simpson() < 0 || p.Simpson() > 1 {
			return false
		}
		if p.Chao1() < float64(p.Richness()) {
			return false
		}
		if p.Evenness() < 0 || p.Evenness() > 1+1e-9 {
			return false
		}
		cov := p.GoodsCoverage()
		return cov >= 0 && cov <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRarefaction(t *testing.T) {
	p := profileOf(50, 30, 20)
	points, err := p.Rarefaction([]int{0, 10, 100, 1000}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points %d", len(points))
	}
	if points[0].OTUs != 0 {
		t.Fatalf("depth 0 OTUs %v", points[0].OTUs)
	}
	// Full depth sees every OTU; overdeep depths clamp.
	if points[2].OTUs != 3 || points[3].Depth != 100 {
		t.Fatalf("full depth point %+v / %+v", points[2], points[3])
	}
	// Monotone non-decreasing.
	for i := 1; i < len(points); i++ {
		if points[i].OTUs < points[i-1].OTUs-1e-9 {
			t.Fatalf("rarefaction not monotone: %+v", points)
		}
	}
}

func TestRarefactionValidation(t *testing.T) {
	p := profileOf(2, 2)
	if _, err := p.Rarefaction([]int{1}, 0, 1); err == nil {
		t.Fatal("0 trials accepted")
	}
	if _, err := p.Rarefaction([]int{-1}, 1, 1); err == nil {
		t.Fatal("negative depth accepted")
	}
}

func TestRarefactionDeterministic(t *testing.T) {
	p := profileOf(20, 10, 5, 1)
	a, _ := p.Rarefaction([]int{5, 15}, 20, 7)
	b, _ := p.Rarefaction([]int{5, 15}, 20, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rarefaction not deterministic")
		}
	}
}

func TestReport(t *testing.T) {
	r := profileOf(10, 5, 1).Report()
	for _, frag := range []string{"OTUs (observed): 3", "Chao1", "Shannon", "coverage"} {
		if !strings.Contains(r, frag) {
			t.Fatalf("report missing %q:\n%s", frag, r)
		}
	}
}

func TestOTUTable(t *testing.T) {
	p := NewProfile(metrics.Clustering{5, 5, 5, 9})
	table := p.OTUTable(map[int]int{5: 0, 9: 3}, map[int]string{5: "Bacillus", 9: ""})
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines %d:\n%s", len(lines), table)
	}
	if !strings.HasPrefix(lines[0], "#OTU") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "5\t3\t0.7500\t0\tBacillus") {
		t.Fatalf("row %q", lines[1])
	}
	if !strings.Contains(lines[2], "9\t1\t0.2500\t3") {
		t.Fatalf("row %q", lines[2])
	}
	// nil maps are fine.
	if got := p.OTUTable(nil, nil); !strings.Contains(got, "5\t3") {
		t.Fatalf("nil-map table:\n%s", got)
	}
}

func TestProfileIDsAligned(t *testing.T) {
	p := NewProfile(metrics.Clustering{7, 2, 7, 2, 2})
	if len(p.IDs) != 2 || p.IDs[0] != 2 || p.IDs[1] != 7 {
		t.Fatalf("IDs %v", p.IDs)
	}
	if p.Counts[0] != 3 || p.Counts[1] != 2 {
		t.Fatalf("Counts %v", p.Counts)
	}
}
