// Package diversity computes the species-diversity statistics that
// metagenome clustering feeds (paper §I: successful grouping "allows
// computation of species diversity metrics"): OTU richness, Shannon and
// Simpson indices, the Chao1 richness estimator, Good's coverage, and
// rarefaction curves — the standard outputs of 16S studies like the
// Sogin et al. seawater survey the paper benchmarks on.
package diversity

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// Profile summarizes one clustering solution as an abundance profile.
type Profile struct {
	// Counts holds one entry per cluster (OTU): its member count.
	Counts []int
	// IDs holds the original cluster labels, index-aligned with Counts.
	IDs []int
	// Total is the number of assigned reads.
	Total int
}

// NewProfile builds an abundance profile from cluster assignments.
func NewProfile(c metrics.Clustering) Profile {
	sizes := c.Sizes()
	p := Profile{Counts: make([]int, 0, len(sizes))}
	ids := make([]int, 0, len(sizes))
	for id := range sizes {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic order
	for _, id := range ids {
		p.Counts = append(p.Counts, sizes[id])
		p.IDs = append(p.IDs, id)
		p.Total += sizes[id]
	}
	return p
}

// Richness is the observed OTU count.
func (p Profile) Richness() int { return len(p.Counts) }

// Singletons counts OTUs observed exactly once.
func (p Profile) Singletons() int { return p.countWith(1) }

// Doubletons counts OTUs observed exactly twice.
func (p Profile) Doubletons() int { return p.countWith(2) }

// countWith counts OTUs with exactly n members.
func (p Profile) countWith(n int) int {
	k := 0
	for _, c := range p.Counts {
		if c == n {
			k++
		}
	}
	return k
}

// Shannon returns the Shannon diversity index H' = -Σ p_i ln p_i.
// An empty profile has H' = 0.
func (p Profile) Shannon() float64 {
	if p.Total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range p.Counts {
		if c == 0 {
			continue
		}
		pi := float64(c) / float64(p.Total)
		h -= pi * math.Log(pi)
	}
	return h
}

// Simpson returns the Simpson diversity index 1 - Σ p_i², the probability
// that two random reads come from different OTUs.
func (p Profile) Simpson() float64 {
	if p.Total == 0 {
		return 0
	}
	s := 0.0
	for _, c := range p.Counts {
		pi := float64(c) / float64(p.Total)
		s += pi * pi
	}
	return 1 - s
}

// Chao1 returns the Chao1 richness estimator
// S_chao1 = S_obs + F1²/(2·F2), using the bias-corrected form
// S_obs + F1(F1-1)/(2(F2+1)) when F2 = 0. It estimates how many OTUs the
// sample would reveal with unbounded sequencing depth — the question the
// "rare biosphere" studies ask.
func (p Profile) Chao1() float64 {
	f1 := float64(p.Singletons())
	f2 := float64(p.Doubletons())
	s := float64(p.Richness())
	if f2 == 0 {
		return s + f1*(f1-1)/2
	}
	return s + f1*f1/(2*f2)
}

// GoodsCoverage returns Good's coverage estimate 1 - F1/N: the fraction
// of the community the sample has already seen.
func (p Profile) GoodsCoverage() float64 {
	if p.Total == 0 {
		return 0
	}
	return 1 - float64(p.Singletons())/float64(p.Total)
}

// Evenness returns Pielou's evenness J' = H'/ln(S), in [0,1]; 1 when all
// OTUs are equally abundant. Profiles with a single OTU return 1.
func (p Profile) Evenness() float64 {
	s := p.Richness()
	if s <= 1 {
		return 1
	}
	return p.Shannon() / math.Log(float64(s))
}

// RarefactionPoint is one (depth, expected OTUs) sample.
type RarefactionPoint struct {
	Depth int
	OTUs  float64
}

// Rarefaction estimates the expected OTU count at each subsampling depth
// by Monte-Carlo resampling without replacement (trials per depth,
// deterministic in seed). Depths beyond the profile total are clamped.
func (p Profile) Rarefaction(depths []int, trials int, seed int64) ([]RarefactionPoint, error) {
	if trials < 1 {
		return nil, fmt.Errorf("diversity: trials must be positive, got %d", trials)
	}
	// Expand the profile into a read->OTU list once.
	reads := make([]int, 0, p.Total)
	for otu, c := range p.Counts {
		for i := 0; i < c; i++ {
			reads = append(reads, otu)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]RarefactionPoint, 0, len(depths))
	for _, d := range depths {
		if d < 0 {
			return nil, fmt.Errorf("diversity: negative depth %d", d)
		}
		if d > len(reads) {
			d = len(reads)
		}
		sum := 0.0
		for t := 0; t < trials; t++ {
			rng.Shuffle(len(reads), func(i, j int) { reads[i], reads[j] = reads[j], reads[i] })
			seen := map[int]struct{}{}
			for _, otu := range reads[:d] {
				seen[otu] = struct{}{}
			}
			sum += float64(len(seen))
		}
		out = append(out, RarefactionPoint{Depth: d, OTUs: sum / float64(trials)})
	}
	return out, nil
}

// OTUTable renders the classic tab-separated OTU table: one row per OTU
// with its size, relative abundance and optional representative id —
// the interchange format QIIME-era 16S pipelines pass between tools.
// reps and names may be nil.
func (p Profile) OTUTable(reps map[int]int, names map[int]string) string {
	var sb strings.Builder
	sb.WriteString("#OTU\tsize\trel_abundance\trepresentative\tlabel\n")
	for i, count := range p.Counts {
		otu := i
		if i < len(p.IDs) {
			otu = p.IDs[i]
		}
		rel := 0.0
		if p.Total > 0 {
			rel = float64(count) / float64(p.Total)
		}
		rep := ""
		if reps != nil {
			if r, ok := reps[otu]; ok {
				rep = fmt.Sprint(r)
			}
		}
		name := ""
		if names != nil {
			name = names[otu]
		}
		fmt.Fprintf(&sb, "%d\t%d\t%.4f\t%s\t%s\n", otu, count, rel, rep, name)
	}
	return sb.String()
}

// Report renders the standard diversity summary block.
func (p Profile) Report() string {
	return fmt.Sprintf(
		"reads: %d\nOTUs (observed): %d\nChao1 (estimated richness): %.1f\nShannon H': %.3f\nSimpson 1-D: %.3f\nPielou evenness: %.3f\nGood's coverage: %.1f%%\n",
		p.Total, p.Richness(), p.Chao1(), p.Shannon(), p.Simpson(), p.Evenness(), 100*p.GoodsCoverage())
}
