// Command dfsadmin demonstrates the simulated HDFS's fault-tolerance
// machinery end to end: it stages a file into a fresh DFS, then walks a
// failure scenario — datanode loss, replica corruption, checksum
// verification, quarantine and re-replication — printing the namenode's
// view after each step. Think `hdfs dfsadmin -report` crossed with a
// chaos drill, for the in-memory stack.
//
// Usage:
//
//	dfsadmin -file reads.fa [-nodes 5] [-replication 3] [-blocksize 4096]
//	dfsadmin -demo          # run with generated data
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/metagenomics/mrmcminh/internal/dfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dfsadmin:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file        = flag.String("file", "", "local file to stage (omit with -demo)")
		demo        = flag.Bool("demo", false, "use generated data instead of -file")
		nodes       = flag.Int("nodes", 5, "datanodes")
		replication = flag.Int("replication", 3, "replicas per block")
		blockSize   = flag.Int("blocksize", 4096, "block size in bytes")
	)
	flag.Parse()

	var data []byte
	switch {
	case *demo:
		data = make([]byte, 64*1024)
		for i := range data {
			data[i] = "ACGT"[i%4]
		}
	case *file != "":
		var err error
		data, err = os.ReadFile(*file)
		if err != nil {
			return err
		}
	default:
		flag.Usage()
		return fmt.Errorf("pass -file or -demo")
	}

	fs, err := dfs.New(dfs.Config{NumDataNodes: *nodes, BlockSize: *blockSize, Replication: *replication})
	if err != nil {
		return err
	}
	const path = "/data/input"
	if err := fs.WriteFile(path, data); err != nil {
		return err
	}
	report(fs, path, "after ingest")

	fmt.Println("\n== killing datanode 0 ==")
	if err := fs.KillDataNode(0); err != nil {
		return err
	}
	report(fs, path, "after node loss")

	fmt.Println("\n== re-replicating ==")
	created, err := fs.ReReplicate()
	if err != nil {
		return err
	}
	fmt.Printf("created %d new replicas\n", created)
	report(fs, path, "after repair")

	fmt.Println("\n== corrupting one replica of block 0 ==")
	if err := fs.CorruptReplica(path, 0, 0); err != nil {
		return err
	}
	bad := fs.VerifyReplicas()
	fmt.Printf("checksum scan flags: %v\n", bad)
	removed := fs.QuarantineCorrupt()
	fmt.Printf("quarantined %d corrupt replicas\n", removed)
	if _, err := fs.ReReplicate(); err != nil {
		return err
	}
	report(fs, path, "after quarantine + repair")

	got, err := fs.ReadFile(path)
	if err != nil {
		return err
	}
	if len(got) != len(data) {
		return fmt.Errorf("data changed size: %d -> %d bytes", len(data), len(got))
	}
	for i := range got {
		if got[i] != data[i] {
			return fmt.Errorf("data corrupted at byte %d", i)
		}
	}
	fmt.Println("\nfile content verified intact through the whole drill ✓")
	return nil
}

// report prints the namenode view.
func report(fs *dfs.FileSystem, path, label string) {
	size, _ := fs.Stat(path)
	blocks, _ := fs.Blocks(path)
	fmt.Printf("-- %s --\n", label)
	fmt.Printf("file %s: %d bytes in %d blocks\n", path, size, len(blocks))
	for _, dn := range fs.DataNodes() {
		status := "alive"
		for _, dead := range fs.DeadDataNodes() {
			if dn.ID == dead {
				status = "DEAD"
			}
		}
		fmt.Printf("  node %d: %s, %d blocks, %d bytes\n", dn.ID, status, dn.NumBlocks(), dn.UsedBytes())
	}
	if ur := fs.UnderReplicated(); len(ur) > 0 {
		fmt.Printf("  under-replicated: %v\n", ur)
	}
	st := fs.Stats()
	fmt.Printf("  io: %d blocks written, %d read, %d corrupt reads\n", st.BlocksWritten, st.BlocksRead, st.CorruptReads)
}
