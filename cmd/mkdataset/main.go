// Command mkdataset materializes the paper's benchmark datasets as FASTA
// plus ground-truth TSV files.
//
// Usage:
//
//	mkdataset -sample S1 -scale 0.01 -out s1.fa -truth s1.tsv
//	mkdataset -sample 53R -scale 0.1 -out 53r.fa
//	mkdataset -sample huse3 -scale 0.001 -out huse3.fa
//	mkdataset -list
//
// Samples: S1..S14 and R1 (whole metagenome, Table II), the eight
// environmental seawater samples (Table I: 53R 55R 112R 115R 137 138
// FS312 FS396), and huse3/huse5 (the 16S simulated set at 3%/5% error).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mkdataset:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sample = flag.String("sample", "", "sample id (see -list)")
		scale  = flag.Float64("scale", 0.01, "fraction of the paper's read count in (0,1]")
		errT   = flag.Float64("error", 0.005, "per-base error rate for whole-metagenome samples")
		seed   = flag.Int64("seed", 1, "generation seed")
		out    = flag.String("out", "", "output FASTA path (required unless -list)")
		truth  = flag.String("truth", "", "optional ground-truth TSV path")
		list   = flag.Bool("list", false, "list available samples")
	)
	flag.Parse()
	if *list {
		fmt.Println("Whole metagenome (Table II):")
		for _, s := range simulate.TableII() {
			fmt.Printf("  %-4s %d species, %d reads of ~%d bp, %d true clusters\n",
				s.SID, len(s.Species), s.Reads, s.ReadLength, s.Clusters)
		}
		fmt.Println("  R1   sharpshooter gut sample analog, 7137 reads (no ground truth)")
		fmt.Println("Environmental 16S (Table I):")
		for _, s := range simulate.TableI() {
			fmt.Printf("  %-6s %-18s %6d reads\n", s.SID, s.Site, s.Reads)
		}
		fmt.Println("16S simulated (Huse et al.): huse3 (3% error), huse5 (5% error), 345000 reads, 43 taxa")
		return nil
	}
	if *sample == "" || *out == "" {
		flag.Usage()
		return fmt.Errorf("-sample and -out are required")
	}

	reads, labels, err := build(*sample, *scale, *errT, *seed)
	if err != nil {
		return err
	}
	if err := fasta.WriteFile(*out, reads); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d reads to %s\n", len(reads), *out)
	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		for i, r := range reads {
			fmt.Fprintf(bw, "%s\t%s\n", r.ID, labels[i])
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote ground truth to %s\n", *truth)
	}
	return nil
}

// build dispatches on the sample id.
func build(sample string, scale, errRate float64, seed int64) ([]fasta.Record, []string, error) {
	switch sample {
	case "R1":
		return simulate.BuildR1(scale, seed)
	case "huse3":
		return simulate.BuildHuse16S(0.03, scale, seed)
	case "huse5":
		return simulate.BuildHuse16S(0.05, scale, seed)
	}
	if spec, err := simulate.TableIISpec(sample); err == nil {
		return simulate.BuildWholeMetagenome(spec, scale, errRate, seed)
	}
	if env, err := simulate.TableISample(sample); err == nil {
		return simulate.BuildEnvironmental(env, scale, seed)
	}
	return nil, nil, fmt.Errorf("unknown sample %q (try -list)", sample)
}
