// Command pigrun executes a Pig Latin script (the paper's Algorithm 3 or
// your own) against the simulated Hadoop stack: local files are staged
// into the in-memory DFS, the script runs as MapReduce jobs on a simulated
// N-node cluster, and STORE outputs are copied back out.
//
// Usage:
//
//	pigrun -script cluster.pig -stage reads.fa=/in/reads.fa \
//	       -p INPUT=/in/reads.fa -p OUTPUT1=/out/h -p OUTPUT2=/out/g \
//	       -p KMER=15 -p NUMHASH=50 -p DIV=1073741827 -p LINK=average \
//	       -p CUTOFF=0.3 -nodes 8 -dump /out/h
//
//	pigrun -algorithm3 -stage reads.fa=/in/reads.fa -nodes 8 \
//	       -p INPUT=/in/reads.fa -p KMER=15 -p NUMHASH=50 -p CUTOFF=0.3
//
// With -algorithm3 the embedded canonical script is used and OUTPUT1/
// OUTPUT2/DIV/LINK default sensibly.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/pig"
	"github.com/metagenomics/mrmcminh/internal/simulate"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// paramFlags collects repeated -p NAME=VALUE flags.
type paramFlags map[string]string

func (p paramFlags) String() string { return fmt.Sprint(map[string]string(p)) }

func (p paramFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" {
		return fmt.Errorf("expected NAME=VALUE, got %q", v)
	}
	p[parts[0]] = parts[1]
	return nil
}

// stageFlags collects repeated -stage local=dfs flags.
type stageFlags []string

func (s *stageFlags) String() string { return strings.Join(*s, ",") }

func (s *stageFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("expected LOCAL=DFSPATH, got %q", v)
	}
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pigrun:", err)
		os.Exit(1)
	}
}

func run() error {
	params := paramFlags{}
	var stages stageFlags
	var (
		scriptPath = flag.String("script", "", "Pig script file (or pass it as the positional argument)")
		algo3      = flag.Bool("algorithm3", false, "run the embedded Algorithm 3 script")
		nodes      = flag.Int("nodes", 8, "simulated cluster nodes")
		seed       = flag.Int64("seed", 1, "hash seed")
		dump       = flag.String("dump", "", "DFS directory whose part files are printed after the run")
		traceOut   = flag.String("trace", "", "write a task trace here after the run (.jsonl = JSON lines, anything else = Chrome trace_event for chrome://tracing)")
		faultSpec  = flag.String("faults", "", "fault-injection plan, e.g. 'chaos' or driver-crash:after=store:/out/hierarchical (see mrmcminh -faults)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for probabilistic fault injection")
		ckptDir    = flag.String("checkpoint-dir", "", "journal each STORE's committed bytes under this directory (enables -resume)")
		shuffleBuf = flag.Int("shuffle-buffer", 0, "map-side sort buffer bytes; >0 switches the script's jobs onto the external spill-and-merge shuffle (0 = in-memory)")
		candidate  = flag.String("candidate", "exact", "candidate-pair generation for -algorithm3: exact (all-pairs) or lsh (banded candidates + log-round connected components)")
		storeBits  = flag.Int("store-bbits", 0, "signature store packing for the clustering UDFs: 0 = full 64-bit slots (bit-identical default), 1..16 = b-bit minwise packing, -1 = legacy per-call slices")
		resume     checkpoint.ResumeFlag
	)
	flag.Var(params, "p", "script parameter NAME=VALUE (repeatable)")
	flag.Var(&stages, "stage", "stage a local file into the DFS: LOCAL=DFSPATH (repeatable)")
	flag.Var(&resume, "resume", "restore STORE outputs whose checkpoint validates instead of recomputing; 'force' discards the journal first")
	flag.Parse()
	if *scriptPath == "" && !*algo3 && flag.NArg() > 0 {
		*scriptPath = flag.Arg(0)
	}

	var src string
	switch {
	case *algo3:
		src = core.Algorithm3Script
		setDefault(params, "OUTPUT1", "/out/hierarchical")
		setDefault(params, "OUTPUT2", "/out/greedy")
		setDefault(params, "LINK", "average")
		setDefault(params, "DIV", "0")
	case *scriptPath != "":
		data, err := os.ReadFile(*scriptPath)
		if err != nil {
			return err
		}
		src = string(data)
	default:
		flag.Usage()
		return fmt.Errorf("either -script or -algorithm3 is required")
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	var injector *faults.Injector
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		injector, err = faults.New(plan)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fault injection: %s (seed %d)\n", plan, *faultSeed)
	}
	if resume.On && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	var journal *checkpoint.Journal
	if *ckptDir != "" {
		store, err := checkpoint.NewDirStore(*ckptDir)
		if err != nil {
			return err
		}
		if journal, err = checkpoint.Open(store, "/"); err != nil {
			return err
		}
		if resume.Force {
			if err := journal.Discard(); err != nil {
				return err
			}
			resume.On = false
		} else if resume.On && journal.Empty() {
			return &checkpoint.MissingError{Dir: *ckptDir}
		}
	}

	fs := dfs.MustNew(dfs.Config{NumDataNodes: *nodes, BlockSize: 256 * 1024, Replication: 3})
	fs.SetTrace(rec)
	for _, st := range stages {
		parts := strings.SplitN(st, "=", 2)
		data, err := os.ReadFile(parts[0])
		if err != nil {
			return err
		}
		if err := fs.WriteFile(parts[1], data); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "staged %s -> dfs:%s (%d bytes)\n", parts[0], parts[1], len(data))
	}
	if len(stages) == 0 && params["INPUT"] == "" {
		if err := stageDemoInput(fs, params, *seed); err != nil {
			return err
		}
	}

	if *algo3 {
		// Route through the typed entry point so DIV defaulting and
		// result extraction behave exactly like the library path.
		p, err := scriptParamsFrom(params)
		if err != nil {
			return err
		}
		p.Candidate = *candidate
		so := core.ScriptOptions{Trace: rec, Faults: injector, Checkpoint: journal, Resume: resume.On, ShuffleBufferBytes: *shuffleBuf, StoreBits: *storeBits}
		res, err := core.RunScriptOpts(fs, mapreduce.Cluster{Nodes: *nodes, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel}, p, *seed, so)
		if err != nil {
			return err
		}
		for _, p := range res.Restored {
			fmt.Fprintf(os.Stderr, "resume: restored dfs:%s from checkpoint\n", p)
		}
		fmt.Fprintf(os.Stderr, "algorithm 3 complete: %d jobs, modelled time %v\n", res.Jobs, res.Virtual.Round(1e9))
		fmt.Fprintf(os.Stderr, "hierarchical clusters: %d, greedy clusters: %d\n",
			len(core.SortedClusterIDs(res.Hierarchical)), len(core.SortedClusterIDs(res.Greedy)))
	} else {
		script, err := pig.Compile(src)
		if err != nil {
			return err
		}
		registry := core.NewRegistry()
		if err := pig.RegisterBuiltins(registry); err != nil {
			return err
		}
		engine := mapreduce.MustEngine(mapreduce.Cluster{Nodes: *nodes, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel})
		engine.Trace = rec
		engine.Faults = injector
		ctx := &pig.Context{
			FS:                 fs,
			Engine:             engine,
			Registry:           registry,
			Params:             params,
			Seed:               *seed,
			Checkpoint:         journal,
			Resume:             resume.On,
			ShuffleBufferBytes: *shuffleBuf,
			StoreBits:          *storeBits,
		}
		res, err := script.Run(ctx)
		if err != nil {
			return err
		}
		for _, p := range res.Restored {
			fmt.Fprintf(os.Stderr, "resume: restored dfs:%s from checkpoint\n", p)
		}
		fmt.Fprintf(os.Stderr, "script complete: %d jobs, modelled time %v, %d aliases\n",
			res.Jobs, res.Virtual.Round(1e9), len(res.Aliases))
	}

	if *dump != "" {
		for _, p := range fs.List(*dump) {
			lines, err := fs.ReadLines(p)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "-- dfs:%s --\n", p)
			for _, l := range lines {
				fmt.Println(l)
			}
		}
	}

	if rec != nil {
		spans := rec.Spans()
		if err := trace.WriteFile(*traceOut, spans); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", len(spans), *traceOut)
		fmt.Fprint(os.Stderr, trace.UtilizationSummary(spans))
	}
	return nil
}

// stageDemoInput fills the DFS with a small synthetic whole-metagenome
// sample (Table II S1, scaled down) when the user gave neither -stage nor
// -p INPUT, so scripts referencing $INPUT run out of the box.
func stageDemoInput(fs *dfs.FileSystem, params paramFlags, seed int64) error {
	spec := simulate.TableII()[0]
	reads, _, err := simulate.BuildWholeMetagenome(spec, 0.001, 0.005, seed)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := fasta.WriteAll(&buf, reads); err != nil {
		return err
	}
	if err := fs.WriteFile("/in/reads.fa", buf.Bytes()); err != nil {
		return err
	}
	params["INPUT"] = "/in/reads.fa"
	setDefault(params, "OUTPUT1", "/out/hierarchical")
	setDefault(params, "OUTPUT2", "/out/greedy")
	setDefault(params, "KMER", "5")
	setDefault(params, "NUMHASH", "50")
	setDefault(params, "DIV", "1031") // smallest prime > 4^5
	setDefault(params, "LINK", "average")
	setDefault(params, "CUTOFF", "0.9")
	fmt.Fprintf(os.Stderr, "no -stage/-p INPUT given: staged %d synthetic %s reads at dfs:/in/reads.fa\n",
		len(reads), spec.SID)
	return nil
}

// setDefault fills a parameter hole if unset.
func setDefault(p paramFlags, k, v string) {
	if _, ok := p[k]; !ok {
		p[k] = v
	}
}

// scriptParamsFrom converts -p flags into typed Algorithm 3 parameters.
func scriptParamsFrom(p paramFlags) (core.ScriptParams, error) {
	var sp core.ScriptParams
	var err error
	sp.Input = p["INPUT"]
	sp.Output1 = p["OUTPUT1"]
	sp.Output2 = p["OUTPUT2"]
	sp.Link = p["LINK"]
	if sp.Input == "" {
		return sp, fmt.Errorf("-p INPUT=<dfs path> is required")
	}
	if sp.K, err = atoiParam(p, "KMER", 5); err != nil {
		return sp, err
	}
	if sp.NumHash, err = atoiParam(p, "NUMHASH", 100); err != nil {
		return sp, err
	}
	div, err := atoiParam(p, "DIV", 0)
	if err != nil {
		return sp, err
	}
	sp.Div = uint64(div)
	cutoff := p["CUTOFF"]
	if cutoff == "" {
		cutoff = "0.9"
	}
	if _, err := fmt.Sscanf(cutoff, "%f", &sp.Cutoff); err != nil {
		return sp, fmt.Errorf("bad CUTOFF %q", cutoff)
	}
	return sp, nil
}

// atoiParam parses an integer parameter with a default.
func atoiParam(p paramFlags, name string, def int) (int, error) {
	v, ok := p[name]
	if !ok {
		return def, nil
	}
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}
