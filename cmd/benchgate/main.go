// Command benchgate compares a freshly produced benchmark JSON file (the
// output of scripts/bench_json.sh) against a committed baseline and fails
// when the hot paths regressed:
//
//   - ns/op more than -max-regress (default 0.30 = +30%) above baseline,
//   - any allocs/op increase in a kernel whose baseline is zero-alloc
//     (the zero-alloc property is load-bearing: those kernels run inside
//     O(N²) pair loops and map tasks).
//
// Benchmarks present in the baseline but missing from the current run are
// warnings (renames should update the baseline in the same commit); new
// benchmarks pass silently until a baseline records them.
//
// Usage:
//
//	benchgate -baseline BENCH_kernels.json -current /tmp/kernels.json [-max-regress 0.30]
//
// Exit status 1 on any regression, with one line per finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

type benchmark struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iterations"`
	NsPerOp  float64            `json:"ns_per_op"`
	BytesOp  *float64           `json:"bytes_per_op"`
	AllocsOp *float64           `json:"allocs_per_op"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

type benchFile struct {
	Commit     string      `json:"commit"`
	Date       string      `json:"date"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline JSON (required)")
		currentPath  = flag.String("current", "", "freshly produced JSON (required)")
		maxRegress   = flag.Float64("max-regress", defaultRegress(), "max allowed ns/op regression as a fraction (0.30 = +30%)")
		minNs        = flag.Float64("min-ns", 20, "skip the ns/op check when the baseline is below this (sub-noise timings)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	curByName := make(map[string]benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}

	failures := 0
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			fmt.Printf("WARN  %s: in baseline %s but missing from current run (renamed? update the baseline)\n",
				b.Name, *baselinePath)
			continue
		}
		if b.NsPerOp >= *minNs && c.NsPerOp > b.NsPerOp*(1+*maxRegress) {
			fmt.Printf("FAIL  %s: %.1f ns/op vs baseline %.1f (+%.0f%%, limit +%.0f%%)\n",
				b.Name, c.NsPerOp, b.NsPerOp, (c.NsPerOp/b.NsPerOp-1)*100, *maxRegress*100)
			failures++
		}
		if b.AllocsOp != nil && *b.AllocsOp == 0 && c.AllocsOp != nil && *c.AllocsOp > 0 {
			fmt.Printf("FAIL  %s: %.0f allocs/op but the baseline is zero-alloc\n", b.Name, *c.AllocsOp)
			failures++
		}
	}
	for _, c := range cur.Benchmarks {
		found := false
		for _, b := range base.Benchmarks {
			if b.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("NOTE  %s: new benchmark, no baseline yet\n", c.Name)
		}
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d regression(s) vs %s\n", failures, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within +%.0f%% of %s\n",
		len(base.Benchmarks), *maxRegress*100, *baselinePath)
}

// defaultRegress reads BENCH_GATE_MAX_REGRESS so CI can widen the gate
// without editing workflow args.
func defaultRegress() float64 {
	if s := os.Getenv("BENCH_GATE_MAX_REGRESS"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.30
}
