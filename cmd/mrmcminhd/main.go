// Command mrmcminhd is the always-on clustering daemon: it keeps the
// incremental MinHash clusterer resident, ingests reads from files,
// URLs, and an HTTP submit endpoint, and answers assignment/diversity
// queries while new reads stream in. Reads are acknowledged only after
// their WAL record is fsynced; a graceful shutdown (SIGTERM/SIGINT or
// -drain-after-ingest) drains the commit queue and writes a
// content-addressed snapshot, and a crashed daemon restarted with
// -resume recovers every acknowledged read with bit-identical
// assignments.
//
// Usage:
//
//	mrmcminhd -data-dir state/ [-addr :8642] [-k 12] [-hashes 64]
//	          [-theta 0.5] [-bbits 0] [-canonical] [-lsh]
//	          [-ingest reads.fa,more.fq] [-ingest-url http://host/reads.fa]
//	          [-drain-after-ingest] [-dump assignments.tsv] [-resume]
//	          [-faults service-crash:after=N] [-fault-seed 1]
//
// Endpoints: POST /v1/reads, GET /v1/reads/{id}, /v1/clusters[/{id}],
// /v1/diversity, /v1/stats, /v1/assignments, /healthz, /readyz,
// /debug/pprof/*.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/ingest"
	"github.com/metagenomics/mrmcminh/internal/minhash"
	"github.com/metagenomics/mrmcminh/internal/serve"
)

func main() {
	if err := run(); err != nil {
		var sc *faults.ServiceCrashError
		if errors.As(err, &sc) {
			// The chaos harness distinguishes an injected crash (exit 3,
			// state recoverable via -resume) from config errors (exit 1).
			fmt.Fprintln(os.Stderr, "mrmcminhd:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "mrmcminhd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8642", "HTTP listen address")
		dataDir    = flag.String("data-dir", "", "durable state directory: WAL + snapshots (required)")
		resume     = flag.Bool("resume", false, "recover existing state in -data-dir (snapshot + WAL replay)")
		k          = flag.Int("k", 12, "k-mer size")
		hashes     = flag.Int("hashes", 64, "number of minwise hash functions")
		theta      = flag.Float64("theta", 0.5, "similarity threshold in [0,1]")
		seed       = flag.Int64("seed", 1, "hash seed")
		canonical  = flag.Bool("canonical", false, "fold reverse-complement k-mers")
		useLSH     = flag.Bool("lsh", false, "index cluster representatives with LSH bands")
		bbits      = flag.Int("bbits", 0, "signature store packing: 0 = full, 1..16 = b-bit")
		workers    = flag.Int("ingest-workers", 0, "sketch worker pool size for pull ingest (0 = auto)")
		batchSize  = flag.Int("ingest-batch", 64, "reads per committed ingest batch")
		queueDepth = flag.Int("queue-depth", 16, "bounded commit queue depth (batches)")
		maxInFl    = flag.Int("max-inflight", 64, "max concurrently admitted submit requests before shedding")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-submit-request deadline")
		readTO     = flag.Duration("http-read-timeout", 30*time.Second, "HTTP read deadline (headers+body); bounds how long a slow client can hold a connection")
		ingestList = flag.String("ingest", "", "comma-separated FASTA/FASTQ files to ingest on startup")
		ingestURL  = flag.String("ingest-url", "", "HTTP(S) URL of a FASTA/FASTQ stream to ingest on startup")
		drainAfter = flag.Bool("drain-after-ingest", false, "drain, checkpoint, and exit once startup ingest completes")
		dumpPath   = flag.String("dump", "", "write the final read->cluster TSV here on graceful exit")
		faultSpec  = flag.String("faults", "", "fault-injection plan, e.g. service-crash:after=N (daemon exits 3 after N acked reads; WAL stays durable)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for fault-plan jitter")
	)
	flag.Parse()
	if *dataDir == "" {
		flag.Usage()
		return fmt.Errorf("-data-dir is required")
	}

	var inj *faults.Injector
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		inj, err = faults.New(plan)
		if err != nil {
			return err
		}
	}

	params := serve.Params{
		K: *k, NumHashes: *hashes, Seed: *seed, Canonical: *canonical,
		Theta: *theta, Bits: *bbits, Estimator: minhash.SetOverlap, UseLSH: *useLSH,
	}
	st, err := serve.Open(*dataDir, params, *resume, inj)
	if err != nil {
		return err
	}
	defer st.Close()
	srv, err := serve.NewServer(st, serve.ServerConfig{
		MaxInFlight:    *maxInFl,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// serve.NewHTTPServer sets read/idle deadlines so a slowloris client
	// cannot hold an intake slot forever.
	httpSrv := serve.NewHTTPServer(srv.Mux(), *readTO)
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mrmcminhd: serving on %s (data dir %s, %d recovered reads)\n",
		ln.Addr(), *dataDir, st.Stats().Recovered)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	// Startup ingest runs in the background; the ingest error (including
	// an injected service crash surfaced through the sink) lands here.
	ingestDone := make(chan error, 1)
	go func() {
		ingestDone <- runStartupIngest(params, *workers, *batchSize, *queueDepth, *ingestList, *ingestURL, srv)
	}()

	var runErr error
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "mrmcminhd: %v: draining\n", sig)
	case err := <-ingestDone:
		ingestDone = nil
		if err != nil {
			runErr = err
		} else if *drainAfter {
			fmt.Fprintln(os.Stderr, "mrmcminhd: ingest complete: draining")
		} else {
			// Keep serving until a signal arrives.
			sig := <-sigCh
			fmt.Fprintf(os.Stderr, "mrmcminhd: %v: draining\n", sig)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	if ingestDone != nil {
		if err := <-ingestDone; runErr == nil && err != nil {
			runErr = err
		}
	}

	if runErr != nil {
		// Crash path (injected or real): NO checkpoint — the WAL alone
		// must carry every acknowledged read into the next -resume.
		return runErr
	}
	if err := srv.Drain(); err != nil {
		return err
	}
	stats := st.Stats()
	fmt.Fprintf(os.Stderr, "mrmcminhd: drained: %d reads in %d clusters checkpointed\n",
		stats.Reads, stats.Clusters)
	if *dumpPath != "" {
		f, err := os.Create(*dumpPath)
		if err != nil {
			return err
		}
		if err := st.DumpTSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// runStartupIngest streams the -ingest files and -ingest-url (in that
// order) through the batching Ingester into the server's commit sink.
func runStartupIngest(p serve.Params, workers, batchSize, queueDepth int, files, url string, srv *serve.Server) error {
	var sources []func() (ingest.Source, string, error)
	if files != "" {
		for _, path := range strings.Split(files, ",") {
			path := strings.TrimSpace(path)
			if path == "" {
				continue
			}
			sources = append(sources, func() (ingest.Source, string, error) {
				src, err := ingest.OpenFile(path)
				return src, path, err
			})
		}
	}
	if url != "" {
		sources = append(sources, func() (ingest.Source, string, error) {
			return ingest.OpenHTTP(url, nil), url, nil
		})
	}
	for _, open := range sources {
		src, name, err := open()
		if err != nil {
			return err
		}
		ing, err := ingest.New(ingest.Config{
			K: p.K, NumHashes: p.NumHashes, Seed: p.Seed, Canonical: p.Canonical,
			Workers: workers, BatchSize: batchSize, QueueDepth: queueDepth,
			Retry: ingest.Retry{Seed: p.Seed},
		})
		if err != nil {
			src.Close()
			return err
		}
		if err := ing.Run(context.Background(), src, srv.Sink()); err != nil {
			return fmt.Errorf("ingest %s: %w", name, err)
		}
		stats := ing.Stats()
		fmt.Fprintf(os.Stderr, "mrmcminhd: ingested %s: %d reads in %d batches (%d retries)\n",
			name, stats.Records, stats.Batches, stats.Retries)
	}
	return nil
}
