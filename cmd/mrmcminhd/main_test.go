package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildDaemon compiles mrmcminhd once per test binary into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mrmcminhd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeCorpus emits a deterministic FASTA community: mutated copies of
// a few base sequences, so clustering produces real structure.
func writeCorpus(t *testing.T, path string, n int) {
	t.Helper()
	const bases = "ACGT"
	rng := uint64(4242)
	next := func(m uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % m
	}
	base := make([][]byte, 6)
	for b := range base {
		base[b] = make([]byte, 160)
		for j := range base[b] {
			base[b][j] = bases[next(4)]
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	for i := 0; i < n; i++ {
		seq := append([]byte(nil), base[next(uint64(len(base)))]...)
		for m := uint64(0); m < 5; m++ {
			seq[next(uint64(len(seq)))] = bases[next(4)]
		}
		fmt.Fprintf(w, ">read-%05d\n%s\n", i, seq)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonChaosKillAndRecover is the end-to-end chaos contract at the
// process level: a daemon killed mid-ingest by an injected service
// crash (exit 3) loses NO acknowledged read, and restarting with
// -resume over the same input produces assignments byte-identical to a
// never-crashed run.
func TestDaemonChaosKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	work := t.TempDir()
	corpus := filepath.Join(work, "reads.fa")
	writeCorpus(t, corpus, 400)

	common := []string{
		"-addr", "127.0.0.1:0", "-k", "10", "-hashes", "48", "-theta", "0.4",
		"-canonical", "-lsh", "-ingest", corpus, "-drain-after-ingest",
	}

	// Reference: uninterrupted run.
	refDump := filepath.Join(work, "ref.tsv")
	refDir := filepath.Join(work, "ref-state")
	cmd := exec.Command(bin, append(append([]string{}, common...),
		"-data-dir", refDir, "-dump", refDump)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}

	// Chaos run: crash after 150 acked reads.
	dir := filepath.Join(work, "chaos-state")
	cmd = exec.Command(bin, append(append([]string{}, common...),
		"-data-dir", dir, "-faults", "service-crash:after=150")...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("chaos run exited 0, expected injected crash\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("chaos run: %v (want exit 3)\n%s", err, out)
	}

	// Recovery: resume over the SAME input; already-acked reads dedup,
	// the rest commit in original order.
	recDump := filepath.Join(work, "recovered.tsv")
	cmd = exec.Command(bin, append(append([]string{}, common...),
		"-data-dir", dir, "-resume", "-dump", recDump)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("recovery run: %v\n%s", err, out)
	}

	ref, err := os.ReadFile(refDump)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := os.ReadFile(recDump)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference dump empty")
	}
	if string(ref) != string(rec) {
		t.Fatalf("recovered assignments differ from uninterrupted run (%d vs %d bytes)", len(rec), len(ref))
	}

	// A second restart must refuse to run without -resume.
	cmd = exec.Command(bin, append(append([]string{}, common...), "-data-dir", dir)...)
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("restart without -resume succeeded\n%s", out)
	}
}
