// Command mrmcminh clusters metagenome sequence reads from a FASTA file
// using minwise hashing, with either the greedy (Algorithm 1) or the
// agglomerative hierarchical (Algorithm 2) approach, on a simulated
// MapReduce cluster.
//
// Usage:
//
//	mrmcminh -in reads.fa [-mode hierarchical|greedy] [-k 5] [-hashes 100]
//	         [-theta 0.9] [-link average] [-nodes 8] [-canonical]
//	         [-out clusters.tsv] [-labels truth.tsv]
//
// The output is one "readID<TAB>clusterLabel" line per read. With -labels
// (a readID<TAB>class ground-truth file) the tool also reports W.Acc.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/metagenomics/mrmcminh"
	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mrmcminh:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in           = flag.String("in", "", "input FASTA file (required)")
		out          = flag.String("out", "", "output TSV file (default stdout)")
		mode         = flag.String("mode", "hierarchical", "clustering mode: hierarchical or greedy")
		k            = flag.Int("k", 5, "k-mer size")
		hashes       = flag.Int("hashes", 100, "number of minwise hash functions")
		theta        = flag.Float64("theta", 0.9, "similarity threshold in [0,1]")
		link         = flag.String("link", "average", "hierarchical linkage: single, average or complete")
		nodes        = flag.Int("nodes", 8, "simulated cluster nodes")
		canonical    = flag.Bool("canonical", false, "fold reverse-complement k-mers (shotgun reads)")
		useLSH       = flag.Bool("lsh", false, "accelerate greedy mode with an LSH candidate index")
		candidate    = flag.String("candidate", "exact", "candidate-pair generation: exact (all-pairs) or lsh (banded candidates + log-round connected components)")
		bucketCap    = flag.Int("lsh-bucket-cap", 0, "max reads per LSH bucket expanded into candidate pairs (0 = default cap; -candidate=lsh only)")
		seed         = flag.Int64("seed", 1, "hash seed")
		labels       = flag.String("labels", "", "optional ground-truth TSV (readID<TAB>class) for W.Acc")
		levels       = flag.String("levels", "", "comma-separated extra thresholds for multi-level output (hierarchical mode)")
		otu          = flag.String("otu", "", "write an OTU table (size, abundance, representative) to this file")
		consensusOut = flag.String("consensus", "", "write per-cluster consensus sequences to this FASTA file")
		traceOut     = flag.String("trace", "", "write a task trace here after the run (.jsonl = JSON lines, anything else = Chrome trace_event for chrome://tracing)")
		faultSpec    = flag.String("faults", "", "fault-injection plan: 'chaos' or comma-separated crash=P,maxcrash=N,taskfail=JOB:PHASE:TASK:UPTO,kill=NODE@DUR,slow=NODE@FACTOR,driver-crash:after=STAGE (clustering output is unaffected; modelled time includes recovery)")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for probabilistic fault injection")
		ckptDir      = flag.String("checkpoint-dir", "", "journal each pipeline stage's committed output under this directory (enables -resume after a driver crash)")
		shuffleBuf   = flag.Int("shuffle-buffer", 0, "map-side sort buffer bytes; >0 switches jobs onto the external spill-and-merge shuffle (0 = in-memory)")
		storeBits    = flag.Int("store-bbits", 0, "signature store packing: 0 = full 64-bit slots (bit-identical default), 1..16 = b-bit minwise packing (8-64x smaller resident signatures, approximate), -1 = legacy per-run slices")
		resume       checkpoint.ResumeFlag
	)
	flag.Var(&resume, "resume", "resume from -checkpoint-dir, skipping stages whose checkpoint validates; 'force' discards the journal first")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}
	reads, err := fasta.ReadSequencesFile(*in) // FASTA or FASTQ
	if err != nil {
		return err
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	var injector *faults.Injector
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		injector, err = faults.New(plan)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fault injection: %s (seed %d)\n", plan, *faultSeed)
	}
	opt := mrmcminh.Options{
		K:                  *k,
		NumHashes:          *hashes,
		Theta:              *theta,
		Canonical:          *canonical,
		UseLSH:             *useLSH,
		Seed:               *seed,
		Cluster:            mapreduce.Cluster{Nodes: *nodes, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel},
		ShuffleBufferBytes: *shuffleBuf,
		StoreBits:          *storeBits,
		Trace:              rec,
		Faults:             injector,
	}
	switch *mode {
	case "hierarchical":
		opt.Mode = mrmcminh.Hierarchical
	case "greedy":
		opt.Mode = mrmcminh.Greedy
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	cand, err := mrmcminh.ParseCandidateGen(*candidate)
	if err != nil {
		return err
	}
	opt.Candidate = cand
	opt.LSHBucketCap = *bucketCap
	switch *link {
	case "single":
		opt.Linkage = mrmcminh.SingleLinkage
	case "average":
		opt.Linkage = mrmcminh.AverageLinkage
	case "complete":
		opt.Linkage = mrmcminh.CompleteLinkage
	default:
		return fmt.Errorf("unknown linkage %q", *link)
	}
	if resume.On && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		journal, err := mrmcminh.OpenCheckpointDir(*ckptDir)
		if err != nil {
			return err
		}
		opt.Checkpoint = journal
		switch {
		case resume.Force:
			opt.Resume = mrmcminh.ResumeForce
		case resume.On:
			opt.Resume = mrmcminh.ResumeOn
		}
	}

	res, err := mrmcminh.Cluster(reads, opt)
	if err != nil {
		return err
	}
	for _, s := range res.SkippedStages {
		fmt.Fprintf(os.Stderr, "resume: skipped stage %s (checkpoint valid)\n", s)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for i, id := range res.ReadIDs {
		fmt.Fprintf(bw, "%s\t%d\n", id, res.Assignments[i])
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "%d reads -> %d clusters in %v (modelled %d-node time %s)\n",
		len(reads), res.NumClusters(), res.Real.Round(1000000), *nodes, metrics.FormatDuration(res.Virtual))
	if injector != nil {
		fmt.Fprintf(os.Stderr, "faults injected: %d (recovery included in modelled time; clusters unaffected)\n",
			injector.Injected())
	}

	if *labels != "" {
		truth, err := loadLabels(*labels, res.ReadIDs)
		if err != nil {
			return err
		}
		acc, err := metrics.WeightedAccuracy(res.Assignments, truth)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "W.Acc against %s: %.2f%%\n", *labels, acc)
	}

	if *otu != "" {
		reps, err := mrmcminh.Representatives(reads, res, opt)
		if err != nil {
			return err
		}
		names := map[int]string{}
		for id, idx := range reps {
			names[id] = res.ReadIDs[idx]
		}
		table := mrmcminh.Diversity(res).OTUTable(reps, names)
		if err := os.WriteFile(*otu, []byte(table), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote OTU table to %s\n", *otu)
	}

	if *consensusOut != "" {
		cons, err := mrmcminh.Consensus(reads, res, opt, mrmcminh.ConsensusOptions{MaxMembers: 50})
		if err != nil {
			return err
		}
		var recs []mrmcminh.Record
		ids := make([]int, 0, len(cons))
		for id := range cons {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if len(cons[id]) == 0 {
				continue
			}
			recs = append(recs, mrmcminh.Record{
				ID:          fmt.Sprintf("otu_%d", id),
				Description: fmt.Sprintf("size=%d", res.Assignments.Sizes()[id]),
				Seq:         cons[id],
			})
		}
		if err := fasta.WriteFile(*consensusOut, recs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d consensus sequences to %s\n", len(recs), *consensusOut)
	}

	if *levels != "" {
		if opt.Mode != mrmcminh.Hierarchical {
			return fmt.Errorf("-levels requires hierarchical mode")
		}
		var thetas []float64
		for _, s := range strings.Split(*levels, ",") {
			var t float64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%f", &t); err != nil {
				return fmt.Errorf("bad level %q", s)
			}
			thetas = append(thetas, t)
		}
		lres, err := mrmcminh.ClusterLevels(reads, opt, thetas)
		if err != nil {
			return err
		}
		for _, lv := range lres.Levels {
			fmt.Fprintf(os.Stderr, "level θ=%.2f: %d clusters\n", lv.Theta, lv.Assignments.NumClusters())
		}
	}

	if rec != nil {
		spans := rec.Spans()
		if err := trace.WriteFile(*traceOut, spans); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", len(spans), *traceOut)
		fmt.Fprint(os.Stderr, trace.UtilizationSummary(spans))
	}
	return nil
}

// loadLabels reads a readID<TAB>class file into read order.
func loadLabels(path string, ids []string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byID := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed label line %q", line)
		}
		byID[parts[0]] = parts[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	truth := make([]string, len(ids))
	for i, id := range ids {
		cls, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("read %q missing from %s", id, path)
		}
		truth[i] = cls
	}
	return truth, nil
}
