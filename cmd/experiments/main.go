// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -table 3 [-samples S1,S9] [-scale 0.01]
//	experiments -table 4 [-scale 0.001]
//	experiments -table 5 [-samples 53R,55R] [-scale 0.02]
//	experiments -figure 2
//	experiments -ablation theta | estimator
//	experiments -all
//
// Scale multiplies the paper's dataset sizes; higher scales take longer
// but sharpen the comparison. Output goes to stdout in the paper's table
// layout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/metagenomics/mrmcminh/internal/bench"
	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table      = flag.Int("table", 0, "regenerate table 3, 4 or 5")
		figure     = flag.Int("figure", 0, "regenerate figure 2")
		ablation   = flag.String("ablation", "", "run ablation: theta, estimator, speculative, errormodel, bbit or scaling")
		svg        = flag.String("svg", "", "write the Figure 2 chart to this SVG file")
		all        = flag.Bool("all", false, "run everything")
		scale      = flag.Float64("scale", 0.01, "dataset scale in (0,1]")
		seed       = flag.Int64("seed", 1, "generation seed")
		nodes      = flag.Int("nodes", 8, "simulated cluster nodes for MrMC runs")
		samples    = flag.String("samples", "", "comma-separated sample subset (tables 3 and 5)")
		traceOut   = flag.String("trace", "", "write a task trace of all MrMC runs here (.jsonl = JSON lines, anything else = Chrome trace_event)")
		faultSpec  = flag.String("faults", "", "fault-injection plan for MrMC runs: 'chaos' or comma-separated crash=P,kill=NODE@DUR,... (results unchanged; modelled time includes recovery)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for probabilistic fault injection")
		ckptDir    = flag.String("checkpoint-dir", "", "journal every MrMC run's stages under this directory (per-run subdirectories; enables -resume)")
		shuffleBuf = flag.Int("shuffle-buffer", 0, "map-side sort buffer bytes for MrMC runs; >0 switches jobs onto the external spill-and-merge shuffle (0 = in-memory)")
		candidate  = flag.String("candidate", "exact", "candidate-pair generation for MrMC runs: exact (all-pairs) or lsh (banded candidates + log-round connected components)")
		storeBits  = flag.Int("store-bbits", 0, "signature store packing for MrMC runs: 0 = full 64-bit slots (bit-identical default), 1..16 = b-bit minwise packing, -1 = legacy per-run slices")
		resume     checkpoint.ResumeFlag
	)
	flag.Var(&resume, "resume", "resume interrupted MrMC runs from -checkpoint-dir; 'force' discards all journals first")
	flag.Parse()

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Cluster = mapreduce.Cluster{Nodes: *nodes, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel}
	cfg.Trace = rec
	cfg.ShuffleBufferBytes = *shuffleBuf
	cand, err := core.ParseCandidateGen(*candidate)
	if err != nil {
		return err
	}
	cfg.Candidate = cand
	cfg.StoreBits = *storeBits
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		cfg.Faults, err = faults.New(plan)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fault injection: %s (seed %d)\n", plan, *faultSeed)
	}

	if resume.On && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		if resume.Force {
			if err := os.RemoveAll(*ckptDir); err != nil {
				return err
			}
			resume.On = false
		}
		store, err := checkpoint.NewDirStore(*ckptDir)
		if err != nil {
			return err
		}
		cfg.CheckpointStore = store
		cfg.Resume = resume.On
	}

	var subset []string
	if *samples != "" {
		subset = strings.Split(*samples, ",")
	}

	ran := false
	if *all || *table == 3 {
		rows, err := bench.Table3(cfg, subset)
		if err != nil {
			return err
		}
		fmt.Println(bench.Table("Table III: simulated and real whole metagenome reads", rows))
		ran = true
	}
	if *all || *table == 4 {
		t4cfg := cfg
		if *scale > 0.002 && !flagSet("scale") {
			t4cfg.Scale = 0.001 // the Huse set is 345k reads; default gentler
		}
		rows, err := bench.Table4(t4cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.Table("Table IV: 16S simulated dataset (3% and 5% error)", rows))
		ran = true
	}
	if *all || *table == 5 {
		rows, err := bench.Table5(cfg, subset)
		if err != nil {
			return err
		}
		fmt.Println(bench.Table("Table V: 16S environmental samples", rows))
		ran = true
	}
	if *all || *figure == 2 {
		f2 := bench.DefaultFigure2Config()
		f2.Seed = *seed
		f2.Trace = rec
		points, err := bench.Figure2(f2)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigure2(points))
		ran = true
	}
	if *all || *ablation == "theta" {
		points, err := bench.AblationThetaHashes(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation(points))
		ran = true
	}
	if *all || *ablation == "estimator" {
		points, err := bench.EstimatorAblation(200, *seed)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatEstimator(points))
		ran = true
	}
	if *all || *ablation == "speculative" {
		points := bench.AblationSpeculative(1000000, []int{2, 4, 8, 12}, 100)
		fmt.Println(bench.FormatSpeculative(points))
		ran = true
	}
	if *all || *ablation == "errormodel" {
		points, err := bench.AblationErrorModel(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatErrorModel(points))
		ran = true
	}
	if *all || *ablation == "scaling" {
		points, err := bench.RuntimeScaling([]float64{0.01, 0.02, 0.04, 0.08}, *seed)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatScaling(points))
		ran = true
	}
	if *all || *ablation == "bbit" {
		points, err := bench.AblationBBit(200, *seed)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatBBit(points))
		ran = true
	}
	if *svg != "" {
		f2 := bench.DefaultFigure2Config()
		f2.Seed = *seed
		points, err := bench.Figure2(f2)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svg, []byte(bench.Figure2SVG(points)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svg)
		ran = true
	}
	if !ran {
		flag.Usage()
		return fmt.Errorf("nothing selected: pass -table, -figure, -ablation or -all")
	}
	if rec != nil {
		spans := rec.Spans()
		if err := trace.WriteFile(*traceOut, spans); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", len(spans), *traceOut)
		fmt.Fprint(os.Stderr, trace.UtilizationSummary(spans))
	}
	if cfg.Faults != nil {
		fmt.Fprintf(os.Stderr, "faults injected: %d (recovery included in modelled times; results unaffected)\n",
			cfg.Faults.Injected())
	}
	return nil
}

// flagSet reports whether the named flag was explicitly provided.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
