package mrmcminh

import "github.com/metagenomics/mrmcminh/internal/kmer"

// newExtractor wraps kmer.NewExtractor for the facade without exposing the
// internal package in the public signature set.
func newExtractor(k int) (*kmer.Extractor, error) {
	return kmer.NewExtractor(k)
}
