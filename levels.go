package mrmcminh

import (
	"github.com/metagenomics/mrmcminh/internal/consensus"
	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/diversity"
)

// LevelsResult is a multi-threshold hierarchical clustering: one shared
// similarity matrix and dendrogram, cut at several thresholds (finest
// first) — the paper's per-taxonomic-level output.
type LevelsResult = core.LevelsResult

// LevelAssignment is one flat clustering within a LevelsResult.
type LevelAssignment = core.LevelAssignment

// ClusterLevels runs the hierarchical pipeline once and extracts a flat
// clustering at every threshold, e.g. species/genus/family OTU levels
// from a single run. Options' Theta and Mode are ignored.
func ClusterLevels(reads []Record, opt Options, thetas []float64) (*LevelsResult, error) {
	return core.RunLevels(reads, opt, thetas)
}

// Representatives returns clusterID -> representative read index: the
// medoid of each cluster under the minhash similarity estimator, computed
// with the same sketch parameters used for clustering. Downstream
// workflows can then analyze one read per cluster instead of all reads.
func Representatives(reads []Record, res *Result, opt Options) (map[int]int, error) {
	return core.PickRepresentatives(reads, res.Assignments, opt)
}

// DiversityProfile summarizes a clustering as an OTU abundance profile
// exposing the standard diversity statistics (Shannon, Simpson, Chao1,
// Good's coverage, rarefaction).
type DiversityProfile = diversity.Profile

// Diversity builds the abundance profile of a clustering result.
func Diversity(res *Result) DiversityProfile {
	return diversity.NewProfile(res.Assignments)
}

// ConsensusOptions tunes per-cluster consensus building.
type ConsensusOptions = consensus.Options

// Consensus derives one consensus sequence per cluster: members are
// star-aligned to the cluster medoid and each column takes the majority
// base, outvoting individual sequencing errors. Returns clusterID ->
// consensus sequence.
func Consensus(reads []Record, res *Result, opt Options, copt ConsensusOptions) (map[int][]byte, error) {
	reps, err := core.PickRepresentatives(reads, res.Assignments, opt)
	if err != nil {
		return nil, err
	}
	return consensus.Build(reads, res.Assignments, reps, copt)
}
